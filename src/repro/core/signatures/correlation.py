"""The partial-correlation (PC) application signature.

"To quantify [dependency strength], we calculate the partial correlation
between adjacent edges for each CG using flow volume statistics. We divide
the logging interval into equal spaced epoch intervals and, using the
PacketIn messages during each epoch, we measure the flow count for each
edge in the CG and compute the correlation over these time series data
using the Pearson's coefficient" (Section III-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.analysis.stats import pearson
from repro.analysis.timeseries import epoch_counts
from repro.core.events import FlowArrival
from repro.core.signatures.base import (
    ChangeRecord,
    JsonDict,
    Signature,
    SignatureKind,
    decode_pair,
    edge_component,
    encode_pair,
)

Edge = Tuple[str, str]
EdgePair = Tuple[Edge, Edge]


@dataclass(frozen=True)
class PartialCorrelation(Signature):
    """Pearson correlation of epoch flow counts between adjacent CG edges.

    Attributes:
        correlations: per adjacent edge pair (sharing a middle node, in
            cascade orientation ``(u, n), (n, w)``), the correlation of
            their per-epoch flow-count series.
        epoch: the epoch width used, in seconds.
        times_by_edge: raw per-edge arrival times, retained only by
            partial builds (``keep_times=True``) so :meth:`merge` can
            re-bucket and re-correlate over the full window; empty on
            normal builds and never persisted.
    """

    correlations: Tuple[Tuple[EdgePair, float], ...]
    epoch: float = 1.0
    times_by_edge: Tuple[Tuple[Edge, Tuple[float, ...]], ...] = ()

    @classmethod
    def build(
        cls,
        arrivals: Sequence[FlowArrival],
        t_start: float,
        t_end: float,
        epoch: float = 1.0,
        min_count: int = 4,
        keep_times: bool = False,
    ) -> "PartialCorrelation":
        """Correlate adjacent edges' epoch count series.

        Edge pairs with fewer than ``min_count`` total observations on
        either edge are skipped (their correlation estimate would be
        noise). ``keep_times=True`` retains the per-edge arrival times,
        making the result a partial signature :meth:`merge` can combine.
        """
        times: Dict[Edge, List[float]] = {}
        for arrival in arrivals:
            times.setdefault((arrival.src, arrival.dst), []).append(arrival.time)
        return cls._from_times(times, t_start, t_end, epoch, min_count, keep_times)

    @classmethod
    def merge(
        cls,
        parts: Sequence["PartialCorrelation"],
        t_start: float,
        t_end: float,
        epoch: float = 1.0,
        min_count: int = 4,
        keep_times: bool = False,
    ) -> "PartialCorrelation":
        """Combine partial PCs built with ``keep_times=True``.

        Pearson's coefficient is not decomposable over sub-series (and the
        ``min_count`` filter applies to *total* observations), so the
        merge concatenates the raw per-edge arrival times and re-runs the
        epoch bucketing and correlation over the merged window ``[t_start,
        t_end)``. Epoch counts are integers, so the result is exact in any
        part order; associative when ``keep_times=True`` is threaded
        through intermediate merges.

        Raises:
            ValueError: if a non-empty part retained no times.
        """
        times: Dict[Edge, List[float]] = {}
        for part in parts:
            if part.correlations and not part.times_by_edge:
                raise ValueError(
                    "PartialCorrelation.merge needs partials built with "
                    "keep_times=True"
                )
            for edge, values in part.times_by_edge:
                times.setdefault(edge, []).extend(values)
        return cls._from_times(times, t_start, t_end, epoch, min_count, keep_times)

    @classmethod
    def _from_times(
        cls,
        times_by_edge: Dict[Edge, List[float]],
        t_start: float,
        t_end: float,
        epoch: float,
        min_count: int,
        keep_times: bool,
    ) -> "PartialCorrelation":
        series = {
            edge: epoch_counts(times, t_start, t_end, epoch)
            for edge, times in times_by_edge.items()
            if len(times) >= min_count
        }

        # Adjacent pairs: (u, n) feeding (n, w). Following the paper, the
        # coefficient is Pearson's over the two epoch-count series; at flow
        # granularity every other edge at the middle node (responses,
        # sibling requests) is itself causally tied to these series, so
        # conditioning on them as confounders would subtract real signal
        # rather than noise.
        out: Dict[EdgePair, float] = {}
        edges = sorted(series)
        by_src: Dict[str, List[Edge]] = {}
        for edge in edges:
            by_src.setdefault(edge[0], []).append(edge)
        for in_edge in edges:
            node = in_edge[1]
            for out_edge in by_src.get(node, []):
                if out_edge == in_edge or out_edge[1] == in_edge[0]:
                    continue  # skip self and pure reverses
                out[(in_edge, out_edge)] = pearson(
                    [float(c) for c in series[in_edge]],
                    [float(c) for c in series[out_edge]],
                )
        return cls(
            correlations=tuple(sorted(out.items())),
            epoch=epoch,
            times_by_edge=tuple(
                (edge, tuple(values))
                for edge, values in sorted(times_by_edge.items())
            )
            if keep_times
            else (),
        )

    def to_dict(self) -> JsonDict:
        """The persisted-JSON encoding (see :mod:`repro.core.persist`)."""
        return {
            "epoch": self.epoch,
            "correlations": [
                [encode_pair(p), r] for p, r in self.correlations
            ],
        }

    @classmethod
    def from_dict(cls, data: JsonDict) -> "PartialCorrelation":
        """Rebuild from :meth:`to_dict` output (raw times stay empty)."""
        return cls(
            correlations=tuple(
                (decode_pair(p), r) for p, r in data["correlations"]
            ),
            epoch=data["epoch"],
        )

    def pairs(self) -> List[EdgePair]:
        """All correlated edge pairs."""
        return [p for p, _ in self.correlations]

    def value(self, pair: EdgePair) -> float:
        """The correlation for one pair; 0.0 when absent."""
        for p, r in self.correlations:
            if p == pair:
                return r
        return 0.0

    def value_map(self) -> Dict[EdgePair, float]:
        """All correlations as a dict (the linear batch form of ``value``).

        ``distance`` and the vectorized stability path
        (:mod:`repro.core.vectorized`) both consume this instead of
        calling :meth:`value` per pair, which rescans ``correlations``.
        """
        return dict(self.correlations)

    def distance(self, other: "PartialCorrelation") -> float:
        """Largest correlation delta across common pairs."""
        worst = 0.0
        mine = self.value_map()
        theirs = other.value_map()
        for pair in set(mine) & set(theirs):
            worst = max(worst, abs(mine[pair] - theirs[pair]))
        return worst

    def diff(
        self,
        other: "PartialCorrelation",
        scope: str,
        delta_threshold: float = 0.4,
    ) -> List[ChangeRecord]:
        """Flag pairs whose dependency strength moved beyond the threshold."""
        changes: List[ChangeRecord] = []
        for pair in sorted(set(self.pairs()) & set(other.pairs())):
            base = self.value(pair)
            cur = other.value(pair)
            delta = abs(cur - base)
            if delta > delta_threshold:
                in_edge, out_edge = pair
                changes.append(
                    ChangeRecord(
                        kind=SignatureKind.PC,
                        scope=scope,
                        description=(
                            f"correlation {in_edge}->{out_edge} "
                            f"{base:.2f} -> {cur:.2f}"
                        ),
                        components=frozenset(
                            {
                                in_edge[1],
                                edge_component(*in_edge),
                                edge_component(*out_edge),
                            }
                        ),
                        magnitude=delta,
                    )
                )
        return changes
