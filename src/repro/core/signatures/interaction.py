"""The component-interaction (CI) application signature.

"The component interaction at a node in CG represents the number of flows
on each incoming or outgoing edge of the application node inside each
application group. We normalize the CI value to the total number of
communications to and from the node" (Section III-B). Comparison is the
chi-squared fitness test of Section IV-A, with the observed counts scaled
to the expected total so that workload-volume differences between the two
logs do not masquerade as structural changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.analysis.stats import chi_squared
from repro.core.events import FlowArrival
from repro.core.signatures.base import (
    ChangeRecord,
    JsonDict,
    Signature,
    SignatureKind,
    edge_component,
)

Edge = Tuple[str, str]
#: Per node: mapping from (direction, peer) to raw flow count.
NodeCounts = Dict[Tuple[str, str], int]


@dataclass(frozen=True)
class ComponentInteraction(Signature):
    """Normalized per-edge flow counts at each node of a group's CG."""

    #: node -> tuple of ((direction, peer), count), direction in {"in","out"}.
    counts: Tuple[Tuple[str, Tuple[Tuple[Tuple[str, str], int], ...]], ...]

    @classmethod
    def build(cls, arrivals: Sequence[FlowArrival]) -> "ComponentInteraction":
        """Count in/out flows per node from a group's arrivals."""
        per_node: Dict[str, NodeCounts] = {}
        for arrival in arrivals:
            src, dst = arrival.src, arrival.dst
            per_node.setdefault(src, {})
            per_node.setdefault(dst, {})
            out_key = ("out", dst)
            in_key = ("in", src)
            per_node[src][out_key] = per_node[src].get(out_key, 0) + 1
            per_node[dst][in_key] = per_node[dst].get(in_key, 0) + 1
        return cls(
            counts=tuple(
                (node, tuple(sorted(counts.items())))
                for node, counts in sorted(per_node.items())
            )
        )

    @classmethod
    def merge(cls, parts: Sequence["ComponentInteraction"]) -> "ComponentInteraction":
        """Combine partial CIs built over disjoint slices of one arrival
        stream.

        Integer count addition — exact and associative in any part order.
        The slices must partition the arrivals (each flow occurrence
        counted by exactly one part); the sharded pipeline guarantees this
        by stitching boundary-straddling occurrences before attribution.
        """
        per_node: Dict[str, NodeCounts] = {}
        for part in parts:
            for node, items in part.counts:
                counts = per_node.setdefault(node, {})
                for key, value in items:
                    counts[key] = counts.get(key, 0) + value
        return cls(
            counts=tuple(
                (node, tuple(sorted(counts.items())))
                for node, counts in sorted(per_node.items())
            )
        )

    def to_dict(self) -> JsonDict:
        """The persisted-JSON encoding (see :mod:`repro.core.persist`)."""
        return {
            "counts": [
                [node, [[list(k), v] for k, v in items]]
                for node, items in self.counts
            ]
        }

    @classmethod
    def from_dict(cls, data: JsonDict) -> "ComponentInteraction":
        """Rebuild from :meth:`to_dict` output (exact round-trip)."""
        return cls(
            counts=tuple(
                (node, tuple(((k[0], k[1]), v) for k, v in items))
                for node, items in data["counts"]
            )
        )

    def node_counts(self, node: str) -> NodeCounts:
        """Raw (direction, peer) -> count mapping for ``node``."""
        for n, items in self.counts:
            if n == node:
                return dict(items)
        return {}

    def normalized(self, node: str) -> Dict[Tuple[str, str], float]:
        """Per-edge counts normalized by the node's total communications."""
        counts = self.node_counts(node)
        total = sum(counts.values())
        if total == 0:
            return {}
        return {k: v / total for k, v in counts.items()}

    def nodes(self) -> List[str]:
        """All nodes with interaction counts."""
        return [n for n, _ in self.counts]

    def chi2_at(self, other: "ComponentInteraction", node: str) -> float:
        """Chi-squared fitness of ``other``'s counts at ``node`` vs ours.

        The observed (current) counts are rescaled so their total matches
        the expected (baseline) total, making the statistic sensitive to
        *distribution* changes rather than workload volume.
        """
        expected = self.node_counts(node)
        observed = other.node_counts(node)
        keys = sorted(set(expected) | set(observed))
        exp_total = sum(expected.values())
        obs_total = sum(observed.values())
        if exp_total == 0 and obs_total == 0:
            return 0.0
        scale = exp_total / obs_total if obs_total else 1.0
        exp_vec = [float(expected.get(k, 0)) for k in keys]
        obs_vec = [observed.get(k, 0) * scale for k in keys]
        return chi_squared(obs_vec, exp_vec)

    def share_maps(self) -> Dict[str, Dict[Tuple[str, str], float]]:
        """:meth:`normalized` for every node, computed in one pass.

        ``distance`` (and its vectorized counterpart in
        :mod:`repro.core.vectorized`) needs every node's shares;
        per-node :meth:`normalized` calls would rescan ``counts`` each
        time. Shares use the same ``count / total`` division, so values
        are bit-identical to ``normalized``'s.
        """
        out: Dict[str, Dict[Tuple[str, str], float]] = {}
        for node, items in self.counts:
            total = 0
            for _key, value in items:
                total += value
            out[node] = (
                {key: value / total for key, value in items} if total else {}
            )
        return out

    def distance(self, other: "ComponentInteraction") -> float:
        """Maximum normalized-share drift across common nodes in [0, 1]."""
        worst = 0.0
        mine_all = self.share_maps()
        theirs_all = other.share_maps()
        for node in set(mine_all) & set(theirs_all):
            mine = mine_all[node]
            theirs = theirs_all[node]
            for key in set(mine) | set(theirs):
                worst = max(worst, abs(mine.get(key, 0.0) - theirs.get(key, 0.0)))
        return worst

    def diff(
        self, other: "ComponentInteraction", scope: str, chi2_threshold: float = 10.0
    ) -> List[ChangeRecord]:
        """Per-node chi-squared comparisons against an operator threshold."""
        changes: List[ChangeRecord] = []
        for node in sorted(set(self.nodes()) | set(other.nodes())):
            chi2 = self.chi2_at(other, node)
            if chi2 > chi2_threshold:
                involved = {node}
                mine = self.normalized(node)
                theirs = other.normalized(node)
                for (direction, peer), _share in sorted(
                    set(mine.items()) ^ set(theirs.items())
                ):
                    involved.add(peer)
                    pair = (node, peer) if direction == "out" else (peer, node)
                    involved.add(edge_component(*pair))
                changes.append(
                    ChangeRecord(
                        kind=SignatureKind.CI,
                        scope=scope,
                        description=(
                            f"interaction shift at {node} (chi2={chi2:.2f})"
                        ),
                        components=frozenset(involved),
                        magnitude=chi2,
                    )
                )
        return changes
