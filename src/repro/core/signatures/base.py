"""Shared signature vocabulary: kinds and change records."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import FrozenSet, Optional


class SignatureKind(str, enum.Enum):
    """The eight signature components of Figure 2(a) / Section III-C."""

    CG = "CG"  # connectivity graph
    FS = "FS"  # flow statistics
    CI = "CI"  # component interaction
    DD = "DD"  # delay distribution
    PC = "PC"  # partial correlation
    PT = "PT"  # physical topology
    ISL = "ISL"  # inter-switch latency
    CRT = "CRT"  # controller response time

    @property
    def is_application(self) -> bool:
        """Whether this kind belongs to the application signature bundle."""
        return self in (
            SignatureKind.CG,
            SignatureKind.FS,
            SignatureKind.CI,
            SignatureKind.DD,
            SignatureKind.PC,
        )

    @property
    def is_infrastructure(self) -> bool:
        """Whether this kind belongs to the infrastructure bundle."""
        return not self.is_application


@dataclass(frozen=True)
class ChangeRecord:
    """One detected difference between two signature snapshots.

    Attributes:
        kind: which signature component changed.
        scope: the application group key, or ``"infrastructure"``.
        description: human-readable summary of the change.
        components: physical/logical components (hosts, switches, links as
            ``"a--b"``) implicated — the paper's localization unit.
        magnitude: dimensionless change size (per-kind semantics: edge
            counts for CG/PT, chi-squared for CI, peak shift for DD, delta
            for PC, relative change for FS, mean-shift-in-std for ISL/CRT).
        timestamp: earliest time the change is visible in the current log
            (used to align against the task time series); None when the
            change is an absence.
        direction: ``"added"`` for newly appeared structure, ``"removed"``
            for vanished structure, ``"shifted"`` for value changes —
            problem classification uses this to tell unauthorized access
            (new edges) from failures (missing edges).
    """

    kind: SignatureKind
    scope: str
    description: str
    components: FrozenSet[str] = frozenset()
    magnitude: float = 0.0
    timestamp: Optional[float] = None
    direction: str = "shifted"

    def brief(self) -> str:
        """A one-line rendering used in reports."""
        ts = f" @{self.timestamp:.2f}s" if self.timestamp is not None else ""
        return f"[{self.kind.value}] {self.scope}: {self.description}{ts}"


def edge_component(a: str, b: str) -> str:
    """Canonical component name for the link/edge between two nodes."""
    return f"{a}--{b}"
