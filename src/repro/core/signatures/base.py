"""Shared signature vocabulary: the base contract, kinds, change records."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional, Tuple


class Signature:
    """Base class of every signature component (CG/FS/CI/DD/PC/PT/ISL/CRT).

    Subclasses are frozen dataclasses carrying derived signature content.
    The class is deliberately *not* abstract — ``merge`` signatures vary
    per component (some need window bounds, all need their ``keep_*``
    retention flag), so the contract is enforced statically by the
    ``signature-contract`` lint rule of :mod:`repro.qa` instead of by
    ``abc``. Every direct subclass must define:

    * ``merge(cls, parts, ...)`` — combine partials built over slices of
      one stream into the signature a single build over the full stream
      would produce. **Must be associative** (the parallel shard pipeline
      in :mod:`repro.core.parallel` merges in tree order) as long as the
      retention flag (``keep_rows``/``keep_events``/... ) is threaded
      through intermediate merges; the property-based harness in
      ``tests/test_signature_contract.py`` checks this.
    * ``diff(self, other, ...)`` — change records of ``other`` (current)
      against ``self`` (baseline).
    * ``to_dict(self)`` — the persisted-JSON encoding of the *derived*
      content (never retained raw state); consumed by
      :mod:`repro.core.persist`.
    * ``from_dict(cls, data)`` — rebuild from :meth:`to_dict` output. The
      round-trip must re-encode identically: ``from_dict(d).to_dict() ==
      d``.
    """

    __slots__ = ()


class SignatureKind(str, enum.Enum):
    """The eight signature components of Figure 2(a) / Section III-C."""

    CG = "CG"  # connectivity graph
    FS = "FS"  # flow statistics
    CI = "CI"  # component interaction
    DD = "DD"  # delay distribution
    PC = "PC"  # partial correlation
    PT = "PT"  # physical topology
    ISL = "ISL"  # inter-switch latency
    CRT = "CRT"  # controller response time

    @property
    def is_application(self) -> bool:
        """Whether this kind belongs to the application signature bundle."""
        return self in (
            SignatureKind.CG,
            SignatureKind.FS,
            SignatureKind.CI,
            SignatureKind.DD,
            SignatureKind.PC,
        )

    @property
    def is_infrastructure(self) -> bool:
        """Whether this kind belongs to the infrastructure bundle."""
        return not self.is_application


@dataclass(frozen=True)
class ChangeRecord:
    """One detected difference between two signature snapshots.

    Attributes:
        kind: which signature component changed.
        scope: the application group key, or ``"infrastructure"``.
        description: human-readable summary of the change.
        components: physical/logical components (hosts, switches, links as
            ``"a--b"``) implicated — the paper's localization unit.
        magnitude: dimensionless change size (per-kind semantics: edge
            counts for CG/PT, chi-squared for CI, peak shift for DD, delta
            for PC, relative change for FS, mean-shift-in-std for ISL/CRT).
        timestamp: earliest time the change is visible in the current log
            (used to align against the task time series); None when the
            change is an absence.
        direction: ``"added"`` for newly appeared structure, ``"removed"``
            for vanished structure, ``"shifted"`` for value changes —
            problem classification uses this to tell unauthorized access
            (new edges) from failures (missing edges).
    """

    kind: SignatureKind
    scope: str
    description: str
    components: FrozenSet[str] = frozenset()
    magnitude: float = 0.0
    timestamp: Optional[float] = None
    direction: str = "shifted"

    def brief(self) -> str:
        """A one-line rendering used in reports."""
        ts = f" @{self.timestamp:.2f}s" if self.timestamp is not None else ""
        return f"[{self.kind.value}] {self.scope}: {self.description}{ts}"


def edge_component(a: str, b: str) -> str:
    """Canonical component name for the link/edge between two nodes."""
    return f"{a}--{b}"


# ----------------------------------------------------------------------
# JSON encoding helpers shared by the signature ``to_dict``/``from_dict``
# implementations (and re-used by :mod:`repro.core.persist`). Edges are
# 2-lists, edge pairs are 2-lists of 2-lists — JSON has no tuples.
# ----------------------------------------------------------------------


def encode_edge(edge: Tuple[str, str]) -> List[str]:
    """JSON encoding of one directed or sorted edge."""
    return [edge[0], edge[1]]


def decode_edge(data: Any) -> Tuple[str, str]:
    """Inverse of :func:`encode_edge`."""
    return (data[0], data[1])


def encode_pair(pair: Tuple[Tuple[str, str], Tuple[str, str]]) -> List[List[str]]:
    """JSON encoding of an (incoming edge, outgoing edge) pair."""
    return [encode_edge(pair[0]), encode_edge(pair[1])]


def decode_pair(data: Any) -> Tuple[Tuple[str, str], Tuple[str, str]]:
    """Inverse of :func:`encode_pair`."""
    return (decode_edge(data[0]), decode_edge(data[1]))


def finite_or_flag(value: float) -> float:
    """Map ``inf`` to the JSON-safe sentinel ``-1.0`` (decoders reverse it)."""
    return value if value != float("inf") else -1.0


JsonDict = Dict[str, Any]
