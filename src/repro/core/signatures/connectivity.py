"""The connectivity-graph (CG) application signature.

"A connectivity graph represents the communication relationship between
the servers where an application runs" (Section III-B), built from the
source/destination metadata of ``PacketIn`` messages. Comparison is the
paper's "simple graph matching algorithm, which returns the list of
missing or new edges" (Section IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.core.events import FlowArrival
from repro.core.signatures.base import (
    ChangeRecord,
    JsonDict,
    Signature,
    SignatureKind,
    decode_edge,
    edge_component,
    encode_edge,
)

Edge = Tuple[str, str]


@dataclass(frozen=True)
class ConnectivityGraph(Signature):
    """Directed host-level communication graph of one application group.

    Attributes:
        edges: observed (src, dst) pairs.
        first_seen: earliest arrival time per edge (drives the timestamps
            on new-edge change records, which task validation aligns with
            the task time series).
    """

    edges: FrozenSet[Edge]
    first_seen: Tuple[Tuple[Edge, float], ...] = ()

    @classmethod
    def build(cls, arrivals: Sequence[FlowArrival]) -> "ConnectivityGraph":
        """Build the CG from a group's flow arrivals."""
        first: Dict[Edge, float] = {}
        for arrival in arrivals:
            edge = (arrival.src, arrival.dst)
            if edge not in first or arrival.time < first[edge]:
                first[edge] = arrival.time
        return cls(
            edges=frozenset(first),
            first_seen=tuple(sorted(first.items())),
        )

    @classmethod
    def merge(cls, parts: Sequence["ConnectivityGraph"]) -> "ConnectivityGraph":
        """Combine partial CGs built over slices of one arrival stream.

        Exact and associative with no retained raw state: edges union,
        first-seen timestamps take the minimum per edge. Equals a single
        build over the concatenated arrivals, in any part order.
        """
        first: Dict[Edge, float] = {}
        for part in parts:
            for edge, t in part.first_seen:
                if edge not in first or t < first[edge]:
                    first[edge] = t
        return cls(
            edges=frozenset(first),
            first_seen=tuple(sorted(first.items())),
        )

    def to_dict(self) -> JsonDict:
        """The persisted-JSON encoding (see :mod:`repro.core.persist`)."""
        return {
            "edges": [encode_edge(e) for e in sorted(self.edges)],
            "first_seen": [[encode_edge(e), t] for e, t in self.first_seen],
        }

    @classmethod
    def from_dict(cls, data: JsonDict) -> "ConnectivityGraph":
        """Rebuild from :meth:`to_dict` output (exact round-trip)."""
        return cls(
            edges=frozenset(decode_edge(e) for e in data["edges"]),
            first_seen=tuple(
                (decode_edge(e), t) for e, t in data["first_seen"]
            ),
        )

    def first_seen_at(self, edge: Edge) -> Optional[float]:
        """When ``edge`` first appeared, or None if absent."""
        for e, t in self.first_seen:
            if e == edge:
                return t
        return None

    def nodes(self) -> Set[str]:
        """All endpoints appearing in the graph."""
        out: Set[str] = set()
        for a, b in self.edges:
            out.add(a)
            out.add(b)
        return out

    def undirected_edges(self) -> Set[Edge]:
        """Edges with direction collapsed (for structure-only comparison)."""
        return {tuple(sorted(e)) for e in self.edges}  # type: ignore[misc]

    def distance(self, other: "ConnectivityGraph") -> float:
        """Normalized symmetric-difference distance in [0, 1]."""
        union = self.edges | other.edges
        if not union:
            return 0.0
        return len(self.edges ^ other.edges) / len(union)

    def diff(self, other: "ConnectivityGraph", scope: str) -> List[ChangeRecord]:
        """New and missing edges of ``other`` (current) vs ``self`` (baseline)."""
        changes: List[ChangeRecord] = []
        for edge in sorted(other.edges - self.edges):
            changes.append(
                ChangeRecord(
                    kind=SignatureKind.CG,
                    scope=scope,
                    description=f"new edge {edge[0]} -> {edge[1]}",
                    components=frozenset({edge[0], edge[1], edge_component(*edge)}),
                    magnitude=1.0,
                    timestamp=other.first_seen_at(edge),
                    direction="added",
                )
            )
        for edge in sorted(self.edges - other.edges):
            changes.append(
                ChangeRecord(
                    kind=SignatureKind.CG,
                    scope=scope,
                    description=f"missing edge {edge[0]} -> {edge[1]}",
                    components=frozenset({edge[0], edge[1], edge_component(*edge)}),
                    magnitude=1.0,
                    timestamp=None,
                    direction="removed",
                )
            )
        return changes
