"""Behavioral signatures (Sections III-B and III-C).

Application signatures, built per application group:

* :class:`~repro.core.signatures.connectivity.ConnectivityGraph` (CG) —
  who talks to whom (space dimension).
* :class:`~repro.core.signatures.flowstats.FlowStats` (FS) — durations,
  byte/packet counts, flow rates (volume dimension).
* :class:`~repro.core.signatures.interaction.ComponentInteraction` (CI) —
  normalized per-edge flow counts at each node (space dimension).
* :class:`~repro.core.signatures.delay.DelayDistribution` (DD) — peaks of
  inter-flow delay histograms at each node (time dimension).
* :class:`~repro.core.signatures.correlation.PartialCorrelation` (PC) —
  dependency strength between adjacent edges (time/volume dimension).

Infrastructure signatures, built data-center-wide:

* :class:`~repro.core.signatures.infrastructure.PhysicalTopology` (PT),
* :class:`~repro.core.signatures.infrastructure.InterSwitchLatency` (ISL),
* :class:`~repro.core.signatures.infrastructure.ControllerResponseTime` (CRT).
"""

from repro.core.signatures.base import ChangeRecord, Signature, SignatureKind
from repro.core.signatures.connectivity import ConnectivityGraph
from repro.core.signatures.flowstats import FlowStats
from repro.core.signatures.interaction import ComponentInteraction
from repro.core.signatures.delay import DelayDistribution, PersistedDelayDistribution
from repro.core.signatures.correlation import PartialCorrelation
from repro.core.signatures.application import (
    ApplicationSignature,
    SignatureConfig,
    build_application_signatures,
)
from repro.core.signatures.infrastructure import (
    ControllerResponseTime,
    InfrastructureSignature,
    InterSwitchLatency,
    PhysicalTopology,
    build_infrastructure_signature,
)

__all__ = [
    "ChangeRecord",
    "Signature",
    "SignatureKind",
    "ConnectivityGraph",
    "FlowStats",
    "ComponentInteraction",
    "DelayDistribution",
    "PersistedDelayDistribution",
    "PartialCorrelation",
    "ApplicationSignature",
    "SignatureConfig",
    "build_application_signatures",
    "ControllerResponseTime",
    "InfrastructureSignature",
    "InterSwitchLatency",
    "PhysicalTopology",
    "build_infrastructure_signature",
]
