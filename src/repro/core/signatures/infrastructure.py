"""Infrastructure signatures: PT, ISL, and CRT (Section III-C).

* **Physical topology (PT)**: "By combining PacketIn and FlowMod
  information from all switches that a flow traverses, we can determine
  the order of traversal and infer physical connectivity between them."
  Host attachment points come from the first/last switch of each flow.
* **Inter-switch latency (ISL)**: per Figure 3, the latency between
  consecutive switches on a flow's path is the gap between the upstream
  switch's FlowMod (its release time) and the downstream switch's
  PacketIn, summarized as mean and standard deviation because individual
  samples vary with switch processing times.
* **Controller response time (CRT)**: the PacketIn-to-FlowMod gap,
  also summarized by its first two moments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.analysis.stats import mean_std
from repro.core.events import FlowArrival
from repro.core.signatures.base import (
    ChangeRecord,
    JsonDict,
    Signature,
    SignatureKind,
    decode_edge,
    edge_component,
    encode_edge,
)

SwitchEdge = Tuple[str, str]


@dataclass(frozen=True)
class PhysicalTopology(Signature):
    """Inferred switch-level connectivity and host attachment points.

    Attributes:
        switch_links: undirected switch adjacency inferred from traversal
            order.
        host_attachment: host -> (first) switch it entered the fabric at.
        switch_observations: per switch, how many flow hops it reported —
            the evidence weight behind "this switch exists and is alive".
        attach_votes: per host, the raw per-switch attachment vote counts,
            retained only by partial builds (``keep_votes=True``) so
            :meth:`merge` can re-run the majority over combined votes;
            empty on normal builds and never persisted.
    """

    switch_links: FrozenSet[SwitchEdge]
    host_attachment: Tuple[Tuple[str, str], ...]
    switch_observations: Tuple[Tuple[str, int], ...] = ()
    attach_votes: Tuple[Tuple[str, Tuple[Tuple[str, int], ...]], ...] = ()

    @classmethod
    def build(
        cls, arrivals: Sequence[FlowArrival], keep_votes: bool = False
    ) -> "PhysicalTopology":
        """Infer links from traversal order and attachments by majority.

        A log window can truncate a traversal mid-path (the tail hops land
        in the next window), which would mis-attribute a host's attachment
        switch if the first/last observation were trusted blindly — hence
        the per-host majority vote over all of its flows.
        """
        links = set()
        attach_votes: Dict[str, Dict[str, int]] = {}
        obs: Dict[str, int] = {}
        for arrival in arrivals:
            dpids = arrival.path_dpids
            for dpid in dpids:
                obs[dpid] = obs.get(dpid, 0) + 1
            for a, b in zip(dpids, dpids[1:]):
                links.add(tuple(sorted((a, b))))
            if dpids:
                src_votes = attach_votes.setdefault(arrival.src, {})
                src_votes[dpids[0]] = src_votes.get(dpids[0], 0) + 1
                dst_votes = attach_votes.setdefault(arrival.dst, {})
                dst_votes[dpids[-1]] = dst_votes.get(dpids[-1], 0) + 1
        return cls._finalize(links, attach_votes, obs, keep_votes)

    @classmethod
    def merge(
        cls, parts: Sequence["PhysicalTopology"], keep_votes: bool = False
    ) -> "PhysicalTopology":
        """Combine partial PTs built with ``keep_votes=True``.

        Links union, observation counts add, and the host-attachment
        majority is re-decided over the summed votes (a per-part majority
        would not be associative — a host's true attachment can lose a
        narrow part but win the total). Exact in any part order.

        Raises:
            ValueError: if a non-empty part retained no votes.
        """
        links = set()
        attach_votes: Dict[str, Dict[str, int]] = {}
        obs: Dict[str, int] = {}
        for part in parts:
            if part.host_attachment and not part.attach_votes:
                raise ValueError(
                    "PhysicalTopology.merge needs partials built with "
                    "keep_votes=True"
                )
            links.update(part.switch_links)
            for dpid, count in part.switch_observations:
                obs[dpid] = obs.get(dpid, 0) + count
            for host, votes in part.attach_votes:
                host_votes = attach_votes.setdefault(host, {})
                for sw, count in votes:
                    host_votes[sw] = host_votes.get(sw, 0) + count
        return cls._finalize(links, attach_votes, obs, keep_votes)

    @classmethod
    def _finalize(
        cls,
        links: set,
        attach_votes: Dict[str, Dict[str, int]],
        obs: Dict[str, int],
        keep_votes: bool,
    ) -> "PhysicalTopology":
        attach = {
            host: max(sorted(votes), key=lambda sw: votes[sw])
            for host, votes in attach_votes.items()
        }
        return cls(
            switch_links=frozenset(links),
            host_attachment=tuple(sorted(attach.items())),
            switch_observations=tuple(sorted(obs.items())),
            attach_votes=tuple(
                (host, tuple(sorted(votes.items())))
                for host, votes in sorted(attach_votes.items())
            )
            if keep_votes
            else (),
        )

    def to_dict(self) -> JsonDict:
        """The persisted-JSON encoding (votes are never persisted)."""
        return {
            "links": [encode_edge(l) for l in sorted(self.switch_links)],
            "attachment": [list(a) for a in self.host_attachment],
            "observations": [list(o) for o in self.switch_observations],
        }

    @classmethod
    def from_dict(cls, data: JsonDict) -> "PhysicalTopology":
        """Rebuild from :meth:`to_dict` output.

        ``observations`` may be absent in payloads written before the
        field existed — it decodes as empty rather than failing.
        """
        return cls(
            switch_links=frozenset(decode_edge(l) for l in data["links"]),
            host_attachment=tuple(tuple(a) for a in data["attachment"]),
            switch_observations=tuple(
                (o[0], int(o[1])) for o in data.get("observations", [])
            ),
        )

    def observed_switches(self) -> FrozenSet[str]:
        """Every switch appearing in an inferred link or attachment."""
        out = set()
        for a, b in self.switch_links:
            out.add(a)
            out.add(b)
        for _, sw in self.host_attachment:
            out.add(sw)
        return frozenset(out)

    def attachment_of(self, host: str) -> Optional[str]:
        """The switch ``host`` was observed entering/leaving at."""
        for h, sw in self.host_attachment:
            if h == host:
                return sw
        return None

    def distance(self, other: "PhysicalTopology") -> float:
        """Normalized symmetric difference of inferred switch links."""
        union = self.switch_links | other.switch_links
        if not union:
            return 0.0
        return len(self.switch_links ^ other.switch_links) / len(union)

    def diff(
        self,
        other: "PhysicalTopology",
        min_switch_evidence: int = 10,
    ) -> List[ChangeRecord]:
        """Link/switch appearance and disappearance, host attachment moves.

        A switch that the baseline observed heavily (at least
        ``min_switch_evidence`` flow hops) but the current log never sees
        is reported as vanished — the primary evidence of switch failure.
        Links with a vanished endpoint are folded into that record rather
        than listed one by one.
        """
        changes: List[ChangeRecord] = []
        base_counts = dict(self.switch_observations)
        cur_observed = other.observed_switches()
        vanished = {
            sw
            for sw, count in base_counts.items()
            if count >= min_switch_evidence and sw not in cur_observed
        }
        if cur_observed:  # an empty current log is absence of data, not failure
            for sw in sorted(vanished):
                neighbour_links = [l for l in self.switch_links if sw in l]
                components = {sw}
                for link in neighbour_links:
                    components.update(link)
                    components.add(edge_component(*link))
                changes.append(
                    ChangeRecord(
                        kind=SignatureKind.PT,
                        scope="infrastructure",
                        description=(
                            f"switch {sw} no longer observed "
                            f"({base_counts[sw]} baseline observations)"
                        ),
                        components=frozenset(components),
                        magnitude=float(len(neighbour_links) or 1),
                        direction="removed",
                    )
                )
        for link in sorted(other.switch_links - self.switch_links):
            changes.append(
                ChangeRecord(
                    kind=SignatureKind.PT,
                    scope="infrastructure",
                    description=f"new switch link {link[0]} -- {link[1]}",
                    components=frozenset({link[0], link[1], edge_component(*link)}),
                    magnitude=1.0,
                    direction="added",
                )
            )
        # A link absent from the current log is only evidence of a problem
        # when both of its switches are still being observed — an idle
        # link (no flow happened to cross it in this window) is not a
        # topology change.
        still_observed = cur_observed
        for link in sorted(self.switch_links - other.switch_links):
            if link[0] not in still_observed or link[1] not in still_observed:
                continue  # folded into a vanished-switch record or idle
            changes.append(
                ChangeRecord(
                    kind=SignatureKind.PT,
                    scope="infrastructure",
                    description=f"missing switch link {link[0]} -- {link[1]}",
                    components=frozenset({link[0], link[1], edge_component(*link)}),
                    magnitude=1.0,
                    direction="removed",
                )
            )
        base_attach = dict(self.host_attachment)
        cur_attach = dict(other.host_attachment)
        for host in sorted(set(base_attach) & set(cur_attach)):
            if base_attach[host] != cur_attach[host]:
                changes.append(
                    ChangeRecord(
                        kind=SignatureKind.PT,
                        scope="infrastructure",
                        description=(
                            f"host {host} moved "
                            f"{base_attach[host]} -> {cur_attach[host]}"
                        ),
                        components=frozenset(
                            {host, base_attach[host], cur_attach[host]}
                        ),
                        magnitude=1.0,
                    )
                )
        return changes


@dataclass(frozen=True)
class InterSwitchLatency(Signature):
    """Mean/std of observed latency between adjacent switch pairs.

    ``samples`` holds the raw per-pair latency values, retained only by
    partial builds (``keep_samples=True``) so :meth:`merge` can
    re-summarize in original time order; empty on normal builds and never
    persisted.
    """

    stats: Tuple[Tuple[SwitchEdge, Tuple[float, float, int]], ...]
    samples: Tuple[Tuple[SwitchEdge, Tuple[float, ...]], ...] = ()

    @classmethod
    def build(
        cls, arrivals: Sequence[FlowArrival], keep_samples: bool = False
    ) -> "InterSwitchLatency":
        """Collect per-adjacent-pair latency samples from hop reports."""
        samples: Dict[SwitchEdge, List[float]] = {}
        for arrival in arrivals:
            hops = arrival.hops
            for up, down in zip(hops, hops[1:]):
                if up.flow_mod_at is None:
                    continue
                latency = down.packet_in_at - up.flow_mod_at
                if latency < 0:
                    continue
                pair = tuple(sorted((up.dpid, down.dpid)))
                samples.setdefault(pair, []).append(latency)
        return cls._finalize(samples, keep_samples)

    @classmethod
    def merge(
        cls, parts: Sequence["InterSwitchLatency"], keep_samples: bool = False
    ) -> "InterSwitchLatency":
        """Combine partial ISLs built with ``keep_samples=True``.

        Mean/std are float-accumulation-order sensitive, so the merge
        concatenates the raw samples in part order — parts must be
        time-contiguous slices of one arrival stream, in time order — and
        re-summarizes, matching a single build over the full stream
        bit for bit.

        Raises:
            ValueError: if a non-empty part retained no samples.
        """
        merged: Dict[SwitchEdge, List[float]] = {}
        for part in parts:
            if part.stats and not part.samples:
                raise ValueError(
                    "InterSwitchLatency.merge needs partials built with "
                    "keep_samples=True"
                )
            for pair, values in part.samples:
                merged.setdefault(pair, []).extend(values)
        return cls._finalize(merged, keep_samples)

    @classmethod
    def _finalize(
        cls, samples: Dict[SwitchEdge, List[float]], keep_samples: bool
    ) -> "InterSwitchLatency":
        stats = {}
        for pair, vals in samples.items():
            mean, std = mean_std(vals)
            stats[pair] = (mean, std, len(vals))
        return cls(
            stats=tuple(sorted(stats.items())),
            samples=tuple(
                (pair, tuple(vals)) for pair, vals in sorted(samples.items())
            )
            if keep_samples
            else (),
        )

    def to_dict(self) -> JsonDict:
        """The persisted-JSON encoding (raw samples are never persisted)."""
        return {
            "stats": [
                [encode_edge(pair), [mean, std, n]]
                for pair, (mean, std, n) in self.stats
            ]
        }

    @classmethod
    def from_dict(cls, data: JsonDict) -> "InterSwitchLatency":
        """Rebuild from :meth:`to_dict` output (samples stay empty)."""
        return cls(
            stats=tuple(
                (decode_edge(pair), (stats[0], stats[1], stats[2]))
                for pair, stats in data["stats"]
            )
        )

    def pairs(self) -> List[SwitchEdge]:
        """All measured adjacent switch pairs."""
        return [p for p, _ in self.stats]

    def mean_of(self, pair: SwitchEdge) -> Optional[float]:
        """Mean latency for one pair, if measured."""
        for p, (mean, _, _) in self.stats:
            if p == pair:
                return mean
        return None

    def distance(self, other: "InterSwitchLatency") -> float:
        """Largest mean shift expressed in baseline standard deviations."""
        worst = 0.0
        base = dict(self.stats)
        for pair, (cur_mean, _, _) in other.stats:
            if pair not in base:
                continue
            mean, std, _ = base[pair]
            denom = max(std, mean * 0.1, 1e-6)
            worst = max(worst, abs(cur_mean - mean) / denom)
        return worst

    def diff(
        self, other: "InterSwitchLatency", sigma_threshold: float = 3.0
    ) -> List[ChangeRecord]:
        """Flag pairs whose mean latency moved beyond N baseline sigmas."""
        changes: List[ChangeRecord] = []
        base = dict(self.stats)
        for pair, (cur_mean, _, n) in sorted(other.stats):
            if pair not in base or n < 3:
                continue
            mean, std, _ = base[pair]
            denom = max(std, mean * 0.1, 1e-6)
            score = abs(cur_mean - mean) / denom
            if score > sigma_threshold:
                changes.append(
                    ChangeRecord(
                        kind=SignatureKind.ISL,
                        scope="infrastructure",
                        description=(
                            f"latency {pair[0]} -- {pair[1]} "
                            f"{mean * 1000:.2f}ms -> {cur_mean * 1000:.2f}ms"
                        ),
                        components=frozenset({pair[0], pair[1], edge_component(*pair)}),
                        magnitude=score,
                    )
                )
        return changes


@dataclass(frozen=True)
class ControllerResponseTime(Signature):
    """Mean/std/count of PacketIn-to-FlowMod response times.

    ``samples`` holds the raw response times, retained only by partial
    builds (``keep_samples=True``) for :meth:`merge`; empty on normal
    builds and never persisted.
    """

    mean: float
    std: float
    count: int
    samples: Tuple[float, ...] = ()

    @classmethod
    def build(
        cls, arrivals: Sequence[FlowArrival], keep_samples: bool = False
    ) -> "ControllerResponseTime":
        """Summarize PacketIn-to-FlowMod response times across all hops."""
        samples = [
            hop.flow_mod_at - hop.packet_in_at
            for arrival in arrivals
            for hop in arrival.hops
            if hop.flow_mod_at is not None and hop.flow_mod_at >= hop.packet_in_at
        ]
        mean, std = mean_std(samples)
        return cls(
            mean=mean,
            std=std,
            count=len(samples),
            samples=tuple(samples) if keep_samples else (),
        )

    @classmethod
    def merge(
        cls, parts: Sequence["ControllerResponseTime"], keep_samples: bool = False
    ) -> "ControllerResponseTime":
        """Combine partial CRTs built with ``keep_samples=True``.

        Concatenates raw samples in part order (parts must be
        time-contiguous slices, in time order) and re-summarizes, matching
        a single build over the full stream bit for bit.

        Raises:
            ValueError: if a non-empty part retained no samples.
        """
        samples: List[float] = []
        for part in parts:
            if part.count and not part.samples:
                raise ValueError(
                    "ControllerResponseTime.merge needs partials built with "
                    "keep_samples=True"
                )
            samples.extend(part.samples)
        mean, std = mean_std(samples)
        return cls(
            mean=mean,
            std=std,
            count=len(samples),
            samples=tuple(samples) if keep_samples else (),
        )

    def to_dict(self) -> JsonDict:
        """The persisted-JSON encoding (raw samples are never persisted)."""
        return {"mean": self.mean, "std": self.std, "count": self.count}

    @classmethod
    def from_dict(cls, data: JsonDict) -> "ControllerResponseTime":
        """Rebuild from :meth:`to_dict` output (samples stay empty)."""
        return cls(mean=data["mean"], std=data["std"], count=data["count"])

    def distance(self, other: "ControllerResponseTime") -> float:
        """Mean shift in baseline sigmas."""
        denom = max(self.std, self.mean * 0.1, 1e-6)
        return abs(other.mean - self.mean) / denom

    def diff(
        self, other: "ControllerResponseTime", sigma_threshold: float = 3.0
    ) -> List[ChangeRecord]:
        """Flag a controller response-time regime change."""
        if self.count < 3 or other.count < 3:
            return []
        score = self.distance(other)
        if score <= sigma_threshold:
            return []
        return [
            ChangeRecord(
                kind=SignatureKind.CRT,
                scope="infrastructure",
                description=(
                    f"controller response time "
                    f"{self.mean * 1000:.2f}ms -> {other.mean * 1000:.2f}ms"
                ),
                components=frozenset({"controller"}),
                magnitude=score,
            )
        ]


@dataclass(frozen=True)
class InfrastructureSignature:
    """The infrastructure bundle built data-center-wide from one log.

    Attributes:
        pt/isl/crt: the three signatures of Section III-C.
        port_down_events: ``(timestamp, dpid, port)`` for every
            ``PortStatus(live=False)`` the controller logged — direct
            switch-reported evidence that corroborates inferred topology
            changes (a vanished switch plus its own down notification is a
            much stronger failure signal than either alone).
    """

    pt: PhysicalTopology
    isl: InterSwitchLatency
    crt: ControllerResponseTime
    port_down_events: Tuple[Tuple[float, str, int], ...] = ()

    def corroborated_dead_switches(self) -> FrozenSet[str]:
        """Switches that themselves reported a port/link going down."""
        return frozenset(dpid for _, dpid, _ in self.port_down_events)

    def to_dict(self) -> JsonDict:
        """The persisted-JSON encoding of the whole bundle."""
        return {
            "pt": self.pt.to_dict(),
            "isl": self.isl.to_dict(),
            "crt": self.crt.to_dict(),
            "port_down_events": [list(e) for e in self.port_down_events],
        }

    @classmethod
    def from_dict(cls, data: JsonDict) -> "InfrastructureSignature":
        """Rebuild from :meth:`to_dict` output.

        ``port_down_events`` decodes leniently (absent in payloads written
        before the field existed).
        """
        return cls(
            pt=PhysicalTopology.from_dict(data["pt"]),
            isl=InterSwitchLatency.from_dict(data["isl"]),
            crt=ControllerResponseTime.from_dict(data["crt"]),
            port_down_events=tuple(
                (float(t), str(d), int(p))
                for t, d, p in data.get("port_down_events", [])
            ),
        )

    @classmethod
    def merge(
        cls,
        parts: Sequence["InfrastructureSignature"],
        keep_partials: bool = False,
    ) -> "InfrastructureSignature":
        """Combine partial bundles built with ``keep_partials=True``.

        Delegates to the per-signature merges (see their exactness
        contracts — parts must be time-contiguous slices, in time order)
        and concatenates the switch-reported port-down events.
        """
        return cls(
            pt=PhysicalTopology.merge([p.pt for p in parts], keep_votes=keep_partials),
            isl=InterSwitchLatency.merge(
                [p.isl for p in parts], keep_samples=keep_partials
            ),
            crt=ControllerResponseTime.merge(
                [p.crt for p in parts], keep_samples=keep_partials
            ),
            port_down_events=tuple(
                event for part in parts for event in part.port_down_events
            ),
        )


def build_infrastructure_signature(
    arrivals: Sequence[FlowArrival],
    port_down_events: Sequence[Tuple[float, str, int]] = (),
    keep_partials: bool = False,
) -> InfrastructureSignature:
    """Build PT, ISL, and CRT from all flow arrivals in a log.

    With ``keep_partials=True`` each component retains its raw votes and
    samples, making the bundle a partial that
    :meth:`InfrastructureSignature.merge` can combine.
    """
    return InfrastructureSignature(
        pt=PhysicalTopology.build(arrivals, keep_votes=keep_partials),
        isl=InterSwitchLatency.build(arrivals, keep_samples=keep_partials),
        crt=ControllerResponseTime.build(arrivals, keep_samples=keep_partials),
        port_down_events=tuple(port_down_events),
    )
