"""The per-group application signature bundle and its builder."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.events import FlowRecord, extract_flow_records
from repro.core.groups import ApplicationGroup, extract_groups
from repro.core.signatures.base import JsonDict
from repro.core.signatures.connectivity import ConnectivityGraph
from repro.core.signatures.correlation import PartialCorrelation
from repro.core.signatures.delay import DelayDistribution
from repro.core.signatures.flowstats import FlowStats
from repro.core.signatures.interaction import ComponentInteraction
from repro.openflow.log import ControllerLog


@dataclass(frozen=True)
class SignatureConfig:
    """Knobs of application-signature construction.

    Attributes:
        epoch: epoch width for PC and FS rate series (seconds).
        dd_window: dependency pairing window for DD (seconds).
        dd_bin_width: DD histogram bin width (the paper plots 20 ms).
        occurrence_gap: gap separating two occurrences of one 5-tuple.
        special_nodes: shared-service hosts excluded from grouping.
    """

    epoch: float = 1.0
    dd_window: float = 1.0
    dd_bin_width: float = 0.02
    occurrence_gap: float = 1.0
    special_nodes: Tuple[str, ...] = ()


@dataclass(frozen=True)
class ApplicationSignature:
    """The five-component behavioral signature of one application group."""

    group: ApplicationGroup
    cg: ConnectivityGraph
    fs: FlowStats
    ci: ComponentInteraction
    dd: DelayDistribution
    pc: PartialCorrelation

    @property
    def key(self) -> str:
        """The owning group's deterministic key."""
        return self.group.key

    def to_dict(self) -> JsonDict:
        """The persisted-JSON encoding of the whole bundle.

        Delegates to each component's ``to_dict`` — the format is owned
        here and in those methods; :mod:`repro.core.persist` only frames
        the result with version and window metadata.
        """
        return {
            "group": {
                "members": sorted(self.group.members),
                "services": sorted(self.group.services),
            },
            "cg": self.cg.to_dict(),
            "fs": self.fs.to_dict(),
            "ci": self.ci.to_dict(),
            "dd": self.dd.to_dict(),
            "pc": self.pc.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: JsonDict) -> "ApplicationSignature":
        """Rebuild from :meth:`to_dict` output.

        The DD component decodes to a summary-backed
        :class:`~repro.core.signatures.delay.PersistedDelayDistribution`;
        everything else round-trips exactly.
        """
        return cls(
            group=ApplicationGroup(
                members=frozenset(data["group"]["members"]),
                services=frozenset(data["group"]["services"]),
            ),
            cg=ConnectivityGraph.from_dict(data["cg"]),
            fs=FlowStats.from_dict(data["fs"]),
            ci=ComponentInteraction.from_dict(data["ci"]),
            dd=DelayDistribution.from_dict(data["dd"]),
            pc=PartialCorrelation.from_dict(data["pc"]),
        )


def group_records(
    records: Sequence[FlowRecord],
    groups: Sequence[ApplicationGroup],
) -> Dict[str, List[FlowRecord]]:
    """Attribute flow records to the application group owning their edge."""
    out: Dict[str, List[FlowRecord]] = {g.key: [] for g in groups}
    member_of: Dict[str, ApplicationGroup] = {}
    for group in groups:
        for host in group.members:
            member_of[host] = group
    for record in records:
        src, dst = record.arrival.src, record.arrival.dst
        group = member_of.get(src) or member_of.get(dst)
        if group is not None and group.owns_edge(src, dst):
            out[group.key].append(record)
    return out


def build_application_signatures(
    log: Optional[ControllerLog],
    config: Optional[SignatureConfig] = None,
    window: Optional[Tuple[float, float]] = None,
    records: Optional[Sequence[FlowRecord]] = None,
) -> Dict[str, ApplicationSignature]:
    """Build every application group's signature bundle from a log.

    Args:
        log: the controller capture (or a window of one). May be None
            when both ``records`` and ``window`` are supplied — the
            sharded pipeline builds from pre-extracted records without
            materializing a sub-log.
        config: construction knobs; defaults are the paper's settings.
        window: explicit ``[t_start, t_end)`` bounds; defaults to the log's
            span (needed so rate/epoch series are comparable across logs of
            different lengths).
        records: pre-extracted flow records for this log, when the caller
            already decoded it (avoids a second pass over large logs).

    Returns:
        Mapping from group key to its :class:`ApplicationSignature`.
    """
    config = config or SignatureConfig()
    if records is None:
        if log is None:
            raise ValueError("either log or records must be provided")
        records = extract_flow_records(log, config.occurrence_gap)
    arrivals = [r.arrival for r in records]
    groups = extract_groups(arrivals, config.special_nodes)
    if window is None:
        if log is None:
            raise ValueError("window is required when log is None")
        window = log.time_span
    t_start, t_end = window

    by_group = group_records(records, groups)
    signatures: Dict[str, ApplicationSignature] = {}
    for group in groups:
        grp_records = by_group[group.key]
        grp_arrivals = [r.arrival for r in grp_records]
        signatures[group.key] = ApplicationSignature(
            group=group,
            cg=ConnectivityGraph.build(grp_arrivals),
            fs=FlowStats.build(grp_records, t_start, t_end, config.epoch),
            ci=ComponentInteraction.build(grp_arrivals),
            dd=DelayDistribution.build(
                grp_arrivals,
                window=config.dd_window,
                bin_width=config.dd_bin_width,
            ),
            pc=PartialCorrelation.build(
                grp_arrivals, t_start, t_end, epoch=config.epoch
            ),
        )
    return signatures
