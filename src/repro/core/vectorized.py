"""Vectorized across-interval distance kernels for stability assessment.

:func:`repro.core.stability.assess_stability` judges each signature kind
by the worst distance between consecutive interval signatures. The pure
path folds ``a.distance(b)`` over every consecutive pair in Python; for
a sequence of ``k`` matched intervals that is ``5 * (k - 1)`` kernel
calls, each rebuilding its feature dicts from scratch. The functions
here batch every interval's features into one array per kind and compute
all consecutive-pair distances in a single numpy pass.

**Bit-identical contract.** Each ``worst_*`` function returns exactly the
float the pure fold returns (equivalence tests in
``tests/test_vectorized_equivalence.py`` assert it bit for bit). That
holds because the kernels restrict themselves to operations whose IEEE
semantics match the scalar code:

* elementwise ``abs`` / subtraction / division (one correctly-rounded
  operation per element, same as the scalar expression);
* integer counts (bool sums) divided as float64, matching Python's
  ``len(a) / len(b)``;
* comparison-based ``max`` reductions — never float *sum* reductions,
  whose pairwise blocking would reassociate and change the result.

Absence is encoded per kind the way the scalar kernels treat it: DD uses
its own ``-1.0`` sentinel (a real peak is a delay, never negative), CG
membership and CI node presence are boolean masks, and PC needs an
explicit presence mask because a present correlation can be ``0.0``.

numpy is an optional accelerator, not a dependency: when it is missing
``HAVE_NUMPY`` is False and callers fall back to the pure fold.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as _np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - the container always has numpy
    _np = None  # type: ignore[assignment]
    HAVE_NUMPY = False

from repro.core.signatures.base import SignatureKind

if TYPE_CHECKING:  # pragma: no cover - import-time only
    from repro.core.signatures.application import ApplicationSignature
    from repro.core.signatures.connectivity import ConnectivityGraph
    from repro.core.signatures.correlation import PartialCorrelation
    from repro.core.signatures.delay import DelayDistribution
    from repro.core.signatures.flowstats import FlowStats
    from repro.core.signatures.interaction import ComponentInteraction


def _require_numpy() -> None:
    if not HAVE_NUMPY:
        raise RuntimeError(
            "numpy is not available; use the pure stability path "
            "(assess_stability(..., vectorize=False))"
        )


def worst_cg(graphs: Sequence["ConnectivityGraph"]) -> float:
    """Worst consecutive :meth:`ConnectivityGraph.distance` in one pass.

    Edges across the whole sequence are numbered once; each interval
    becomes a boolean membership row, and ``|a ^ b| / |a | b|`` is an
    integer-count division exactly like the scalar ``len`` expression.
    """
    _require_numpy()
    if len(graphs) < 2:
        return 0.0
    ids: Dict[Tuple[str, str], int] = {}
    for graph in graphs:
        for edge in graph.edges:
            if edge not in ids:
                ids[edge] = len(ids)
    if not ids:
        return 0.0
    member = _np.zeros((len(graphs), len(ids)), dtype=bool)
    for i, graph in enumerate(graphs):
        row = member[i]
        for edge in graph.edges:
            row[ids[edge]] = True
    a, b = member[:-1], member[1:]
    union = (a | b).sum(axis=1)
    sym = (a ^ b).sum(axis=1)
    # Guarded denominator: rows with an empty union are defined as 0.0
    # distance; the replacement denominator only feeds discarded lanes.
    dist = _np.where(union > 0, sym / _np.maximum(union, 1), 0.0)
    return float(dist.max())


def worst_fs(stats: Sequence["FlowStats"]) -> float:
    """Worst consecutive :meth:`FlowStats.distance` in one pass.

    Rows are :meth:`FlowStats.scalar_summary`; the symmetric relative
    change mirrors ``_relative`` including its 1e-12 zero guard.
    """
    _require_numpy()
    if len(stats) < 2:
        return 0.0
    features = _np.array([s.scalar_summary() for s in stats], dtype=_np.float64)
    base, cur = features[:-1], features[1:]
    denom = _np.maximum(_np.abs(base), _np.abs(cur))
    rel = _np.where(
        denom < 1e-12,
        0.0,
        _np.abs(cur - base) / _np.maximum(denom, 1e-12),
    )
    return float(rel.max())


def worst_ci(interactions: Sequence["ComponentInteraction"]) -> float:
    """Worst consecutive :meth:`ComponentInteraction.distance` in one pass.

    Columns are (node, edge-key) pairs over the whole sequence; shares
    come from :meth:`ComponentInteraction.share_maps` (the same
    ``count / total`` divisions as the scalar path). A node-presence
    mask keeps only columns whose node appears in *both* intervals of a
    pair — shares default to 0.0 everywhere else, exactly like the
    scalar ``dict.get(key, 0.0)``.
    """
    _require_numpy()
    if len(interactions) < 2:
        return 0.0
    share_maps = [ci.share_maps() for ci in interactions]
    node_ids: Dict[str, int] = {}
    col_ids: Dict[Tuple[str, Tuple[str, str]], int] = {}
    for shares_by_node in share_maps:
        for node, shares in shares_by_node.items():
            if node not in node_ids:
                node_ids[node] = len(node_ids)
            for key in shares:
                col = (node, key)
                if col not in col_ids:
                    col_ids[col] = len(col_ids)
    if not col_ids:
        return 0.0
    n = len(interactions)
    share = _np.zeros((n, len(col_ids)), dtype=_np.float64)
    present = _np.zeros((n, len(node_ids)), dtype=bool)
    col_node = _np.empty(len(col_ids), dtype=_np.intp)
    for (node, _key), j in col_ids.items():
        col_node[j] = node_ids[node]
    for i, shares_by_node in enumerate(share_maps):
        for node, shares in shares_by_node.items():
            present[i, node_ids[node]] = True
            row = share[i]
            for key, value in shares.items():
                row[col_ids[(node, key)]] = value
    common = (present[:-1] & present[1:])[:, col_node]
    diff = _np.where(common, _np.abs(share[1:] - share[:-1]), 0.0)
    return float(diff.max())


def worst_dd(delays: Sequence["DelayDistribution"]) -> float:
    """Worst consecutive :meth:`DelayDistribution.distance` in one pass.

    Columns are edge pairs; cells hold the dominant peak from
    :meth:`DelayDistribution.peak_map`. The scalar kernel's own ``-1.0``
    sentinel covers both absence and multi-modality, so one ``>= 0``
    mask on each side of a pair reproduces its common-pair filter.
    """
    _require_numpy()
    if len(delays) < 2:
        return 0.0
    peak_maps = [dd.peak_map() for dd in delays]
    col_ids: Dict[object, int] = {}
    for peaks in peak_maps:
        for pair in peaks:
            if pair not in col_ids:
                col_ids[pair] = len(col_ids)
    if not col_ids:
        return 0.0
    peak = _np.full((len(delays), len(col_ids)), -1.0, dtype=_np.float64)
    for i, peaks in enumerate(peak_maps):
        row = peak[i]
        for pair, value in peaks.items():
            row[col_ids[pair]] = value
    a, b = peak[:-1], peak[1:]
    known = (a >= 0.0) & (b >= 0.0)
    diff = _np.where(known, _np.abs(b - a), 0.0)
    return float(diff.max())


def worst_pc(correlations: Sequence["PartialCorrelation"]) -> float:
    """Worst consecutive :meth:`PartialCorrelation.distance` in one pass.

    Unlike DD there is no sentinel value available — a present
    correlation can legitimately be 0.0 — so presence is tracked in an
    explicit boolean matrix alongside the value matrix.
    """
    _require_numpy()
    if len(correlations) < 2:
        return 0.0
    value_maps = [pc.value_map() for pc in correlations]
    col_ids: Dict[object, int] = {}
    for values in value_maps:
        for pair in values:
            if pair not in col_ids:
                col_ids[pair] = len(col_ids)
    if not col_ids:
        return 0.0
    n = len(correlations)
    value = _np.zeros((n, len(col_ids)), dtype=_np.float64)
    present = _np.zeros((n, len(col_ids)), dtype=bool)
    for i, values in enumerate(value_maps):
        vrow, prow = value[i], present[i]
        for pair, r in values.items():
            j = col_ids[pair]
            vrow[j] = r
            prow[j] = True
    common = present[:-1] & present[1:]
    diff = _np.where(common, _np.abs(value[1:] - value[:-1]), 0.0)
    return float(diff.max())


def worst_distances(
    matched: Sequence["ApplicationSignature"],
) -> Dict[SignatureKind, float]:
    """All five worst consecutive distances for one matched sequence.

    The vectorized replacement for ``assess_stability``'s inner fold:
    one array pass per kind instead of ``5 * (len(matched) - 1)``
    Python kernel calls.
    """
    return {
        SignatureKind.CG: worst_cg([s.cg for s in matched]),
        SignatureKind.FS: worst_fs([s.fs for s in matched]),
        SignatureKind.CI: worst_ci([s.ci for s in matched]),
        SignatureKind.DD: worst_dd([s.dd for s in matched]),
        SignatureKind.PC: worst_pc([s.pc for s in matched]),
    }


__all__: List[str] = [
    "HAVE_NUMPY",
    "worst_cg",
    "worst_fs",
    "worst_ci",
    "worst_dd",
    "worst_pc",
    "worst_distances",
]
