"""Task-library persistence: learned automata survive across sessions.

Learning task signatures needs dozens of captured runs per task
(Section V-B2); operators do that once, not per analysis session. This
module serializes a :class:`~repro.core.tasks.library.TaskLibrary` —
every automaton's states, transitions, and endpoint sets, plus the
service-name mapping the matcher needs — to JSON and back, such that a
reloaded library detects identically.

Labels serialize by type: :class:`~repro.openflow.match.MaskedFlow`
templates as tagged dicts, raw :class:`~repro.openflow.match.FlowKey`
labels likewise, so both masked and unmasked automata round-trip.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.core.tasks.automaton import TaskAutomaton
from repro.core.tasks.library import TaskLibrary, TaskSignature
from repro.openflow.match import FlowKey, MaskedFlow

FORMAT_VERSION = 1


def _label_to_json(label: Any) -> Dict[str, Any]:
    if isinstance(label, MaskedFlow):
        return {
            "t": "masked",
            "src": label.src,
            "sp": label.src_port,
            "dst": label.dst,
            "dp": label.dst_port,
        }
    if isinstance(label, FlowKey):
        return {
            "t": "key",
            "src": label.src,
            "sp": label.src_port,
            "dst": label.dst,
            "dp": label.dst_port,
            "proto": label.proto,
        }
    raise TypeError(f"cannot serialize task label of type {type(label).__name__}")


def _label_from_json(data: Dict[str, Any]) -> Any:
    tag = data.get("t")
    if tag == "masked":
        return MaskedFlow(
            src=data["src"], src_port=data["sp"], dst=data["dst"], dst_port=data["dp"]
        )
    if tag == "key":
        return FlowKey(
            src=data["src"],
            dst=data["dst"],
            src_port=data["sp"],
            dst_port=data["dp"],
            proto=data.get("proto", "tcp"),
        )
    raise ValueError(f"unknown task label tag {tag!r}")


def automaton_to_dict(automaton: TaskAutomaton) -> Dict[str, Any]:
    """Encode one automaton."""
    return {
        "patterns": [
            [_label_to_json(label) for label in pattern]
            for pattern in automaton.patterns
        ],
        "transitions": [sorted(t) for t in automaton.transitions],
        "start_states": sorted(automaton.start_states),
        "accept_states": sorted(automaton.accept_states),
        "support": list(automaton.support),
    }


def automaton_from_dict(data: Dict[str, Any]) -> TaskAutomaton:
    """Decode one automaton."""
    return TaskAutomaton(
        patterns=tuple(
            tuple(_label_from_json(l) for l in pattern)
            for pattern in data["patterns"]
        ),
        transitions=tuple(frozenset(t) for t in data["transitions"]),
        start_states=frozenset(data["start_states"]),
        accept_states=frozenset(data["accept_states"]),
        support=tuple(data["support"]),
    )


def library_to_dict(library: TaskLibrary) -> Dict[str, Any]:
    """Encode a full task library (signatures + matcher configuration)."""
    return {
        "version": FORMAT_VERSION,
        "service_names": dict(library.service_names),
        "interleave_threshold": library.interleave_threshold,
        "signatures": {
            name: {
                "automaton": automaton_to_dict(sig.automaton),
                "masked": sig.masked,
                "n_runs": sig.n_runs,
                "min_sup": sig.min_sup,
            }
            for name, sig in library.signatures.items()
        },
    }


def library_from_dict(data: Dict[str, Any]) -> TaskLibrary:
    """Decode a task library.

    Raises:
        ValueError: on an unsupported format version.
    """
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported task-library format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    library = TaskLibrary(
        service_names=data.get("service_names", {}),
        interleave_threshold=data.get("interleave_threshold", 1.0),
    )
    for name, sig in data.get("signatures", {}).items():
        library.signatures[name] = TaskSignature(
            name=name,
            automaton=automaton_from_dict(sig["automaton"]),
            masked=sig.get("masked", True),
            n_runs=sig.get("n_runs", 0),
            min_sup=sig.get("min_sup", 0.6),
        )
    return library


def save_library(library: TaskLibrary, path: str) -> None:
    """Write a task library to a JSON file."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(library_to_dict(library), fh)


def load_library(path: str) -> TaskLibrary:
    """Read a task library from a JSON file."""
    with open(path, encoding="utf-8") as fh:
        return library_from_dict(json.load(fh))
