"""Task signatures: mining, automata, and detection (Section III-D).

An operator task (VM migration, startup, storage mount, ...) manifests as
a flow sequence that varies run to run. FlowDiff compacts the variations
into a finite-state automaton in three stages:

1. :func:`~repro.core.tasks.mining.common_flows` — intersect the flow sets
   of all training runs;
2. :func:`~repro.core.tasks.mining.closed_frequent_patterns` — mine closed
   frequent contiguous flow sub-sequences above ``min_sup``;
3. :class:`~repro.core.tasks.automaton.TaskAutomaton` — tokenize each run
   into pattern states (longest first, then most frequent) and connect
   them.

Detection (:class:`~repro.core.tasks.detector.TaskDetector`) then scans a
log's flow stream, spawning a matcher whenever a flow could begin an
automaton and tolerating interleaved foreign flows up to a 1-second bound,
producing the *task time series* that change validation consumes.
"""

from repro.core.tasks.mining import (
    closed_frequent_patterns,
    common_flows,
    filter_to_common,
    frequent_contiguous_patterns,
)
from repro.core.tasks.automaton import TaskAutomaton
from repro.core.tasks.detector import TaskDetector, TaskEvent
from repro.core.tasks.library import TaskLibrary, TaskSignature
from repro.core.tasks.serialize import (
    library_from_dict,
    library_to_dict,
    load_library,
    save_library,
)

__all__ = [
    "closed_frequent_patterns",
    "common_flows",
    "filter_to_common",
    "frequent_contiguous_patterns",
    "TaskAutomaton",
    "TaskDetector",
    "TaskEvent",
    "TaskLibrary",
    "TaskSignature",
    "library_from_dict",
    "library_to_dict",
    "load_library",
    "save_library",
]
