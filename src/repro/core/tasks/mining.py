"""Sequential frequent-pattern mining for task-signature states.

Implements the state-extraction stage of Section III-D: given the training
runs of one task (already reduced to their common flows), find all
*contiguous* flow sub-sequences whose support — the fraction of runs
containing them — meets the operator's ``min_sup``, then prune to *closed*
patterns (a pattern is dropped when a strict super-pattern has the same
support, exactly the paper's example where ``f3 f4 f5`` subsumes ``f3``,
``f4``, ``f5``, ``f3 f4`` and ``f4 f5``).

Patterns are over hashable flow labels; the task library uses
:class:`~repro.openflow.match.MaskedFlow` templates or raw
:class:`~repro.openflow.match.FlowKey` 5-tuples depending on the masking
mode.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence, Set, Tuple, TypeVar

Label = TypeVar("Label", bound=Hashable)
Pattern = Tuple[Hashable, ...]


def common_flows(runs: Sequence[Sequence[Label]]) -> Set[Label]:
    """The flows present in **every** run: ``S(T) = ∩ S(T_i)``.

    Raises:
        ValueError: when no runs are supplied.
    """
    if not runs:
        raise ValueError("need at least one training run")
    common: Set[Label] = set(runs[0])
    for run in runs[1:]:
        common &= set(run)
    return common


def filter_to_common(
    runs: Sequence[Sequence[Label]], common: Set[Label]
) -> List[List[Label]]:
    """Build ``T'_i`` from ``T_i`` by dropping non-common flows."""
    return [[f for f in run if f in common] for run in runs]


def _contains_contiguous(run: Sequence[Label], pattern: Pattern) -> bool:
    """Whether ``pattern`` occurs as a contiguous sub-sequence of ``run``."""
    n, m = len(run), len(pattern)
    if m == 0 or m > n:
        return False
    first = pattern[0]
    for i in range(n - m + 1):
        if run[i] == first and tuple(run[i : i + m]) == pattern:
            return True
    return False


def frequent_contiguous_patterns(
    runs: Sequence[Sequence[Label]],
    min_sup: float = 0.6,
    max_length: int = 0,
) -> Dict[Pattern, int]:
    """All contiguous patterns with run-support >= ``min_sup``.

    Support is counted over runs (a pattern occurring twice in one run
    counts once), matching the paper's example where ``f3 f4 f5`` has
    support 3 across three runs.

    Args:
        runs: the filtered runs ``T'_i``.
        min_sup: minimum support as a fraction of the number of runs.
        max_length: optional cap on pattern length (0 = unlimited).

    Returns:
        Mapping from pattern to its absolute support count.

    Raises:
        ValueError: if ``min_sup`` is outside (0, 1] or no runs are given.
    """
    if not runs:
        raise ValueError("need at least one training run")
    if not 0.0 < min_sup <= 1.0:
        raise ValueError(f"min_sup must be in (0, 1], got {min_sup}")
    threshold = min_sup * len(runs)

    # Apriori over contiguous patterns: grow frequent length-k patterns by
    # one flow; a length-k pattern can only be frequent if its length-(k-1)
    # prefix is.
    counts: Dict[Pattern, int] = {}
    singles: Dict[Pattern, Set[int]] = {}
    for idx, run in enumerate(runs):
        for label in set(run):
            singles.setdefault((label,), set()).add(idx)
    frontier = {p: s for p, s in singles.items() if len(s) >= threshold}
    for pattern, support_runs in frontier.items():
        counts[pattern] = len(support_runs)

    length = 1
    while frontier and (max_length <= 0 or length < max_length):
        length += 1
        candidates: Dict[Pattern, Set[int]] = {}
        for idx, run in enumerate(runs):
            for i in range(len(run) - length + 1):
                prefix = tuple(run[i : i + length - 1])
                if prefix not in frontier:
                    continue
                pattern = tuple(run[i : i + length])
                candidates.setdefault(pattern, set()).add(idx)
        frontier = {
            p: s for p, s in candidates.items() if len(s) >= threshold
        }
        for pattern, support_runs in frontier.items():
            counts[pattern] = len(support_runs)
    return counts


def closed_frequent_patterns(
    frequent: Dict[Pattern, int]
) -> Dict[Pattern, int]:
    """Prune non-closed patterns.

    A pattern ``p1`` is pruned when some strict super-pattern ``p2``
    (containing ``p1`` contiguously) has the same support — ``p2`` carries
    strictly more information at no loss (Section III-D, citing the closed
    frequent pattern literature).
    """
    patterns = sorted(frequent, key=len, reverse=True)
    closed: Dict[Pattern, int] = {}
    for p1 in patterns:
        subsumed = any(
            len(p2) > len(p1)
            and frequent[p2] == frequent[p1]
            and _contains_contiguous(p2, p1)
            for p2 in closed
        )
        if not subsumed:
            closed[p1] = frequent[p1]
    return closed


def mine_states(
    runs: Sequence[Sequence[Label]],
    min_sup: float = 0.6,
    max_length: int = 0,
) -> Dict[Pattern, int]:
    """End-to-end state extraction: frequent mining plus closed pruning."""
    return closed_frequent_patterns(
        frequent_contiguous_patterns(runs, min_sup, max_length)
    )
