"""Task automata: compact acceptors for a task's flow-sequence variants.

Built per Section III-D stage (3): the mined closed patterns become
states; each training run is tokenized into a state sequence using the
paper's two rules — prefer the **longer** state first, and among equal
lengths the **more frequent** one — and the automaton's transitions are
the observed state successions. Start states are the runs' first tokens,
accept states their last.

The automaton is label-generic: training labels are usually
:class:`~repro.openflow.match.MaskedFlow` templates, and matching against
concrete flows is injected by the caller (see
:mod:`repro.core.tasks.detector` for the unification semantics).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, List, Optional, Sequence, Set, Tuple

from repro.core.tasks.mining import mine_states

Label = Hashable
Pattern = Tuple[Label, ...]


@dataclass(frozen=True)
class TaskAutomaton:
    """A finite-state acceptor over flow labels.

    Attributes:
        patterns: state id -> the contiguous flow pattern the state stands
            for (ids are dense, assigned in tokenization-discovery order).
        transitions: state id -> successor state ids.
        start_states: states a run may begin with.
        accept_states: states a run may end with.
        support: state id -> mined support of its pattern.
    """

    patterns: Tuple[Pattern, ...]
    transitions: Tuple[FrozenSet[int], ...]
    start_states: FrozenSet[int]
    accept_states: FrozenSet[int]
    support: Tuple[int, ...]

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        runs: Sequence[Sequence[Label]],
        min_sup: float = 0.6,
        max_pattern_length: int = 0,
        edge_min_sup: float = 0.0,
    ) -> "TaskAutomaton":
        """Mine states from ``runs`` and assemble the automaton.

        Args:
            runs: the task's training runs, already reduced to common
                flows (see :func:`repro.core.tasks.mining.filter_to_common`).
            min_sup: minimum pattern support fraction.
            max_pattern_length: optional cap on state pattern length.
            edge_min_sup: minimum fraction of runs that must begin (end)
                with a state for it to stay a start (accept) state, and —
                at half this threshold — use a transition for it to
                survive. 0.0 keeps the paper's permissive construction
                where every training run's endpoints qualify; a positive
                value discards endpoints contributed only by noisy outlier
                runs (duplicated/reordered flows), which otherwise create
                degenerate single-flow accept paths.

        Raises:
            ValueError: if every run is empty (nothing to learn).
        """
        states = mine_states(runs, min_sup, max_pattern_length)
        if not any(runs):
            raise ValueError("cannot build an automaton from empty runs")
        # Sort rule: longer first, then more frequent, then lexical order of
        # the pattern representation for determinism.
        ordered = sorted(
            states.items(), key=lambda kv: (-len(kv[0]), -kv[1], repr(kv[0]))
        )

        pattern_ids: Dict[Pattern, int] = {}
        patterns: List[Pattern] = []
        supports: List[int] = []
        transitions: List[Dict[int, int]] = []
        start_counts: Dict[int, int] = {}
        accept_counts: Dict[int, int] = {}

        def state_id(pattern: Pattern, support: int) -> int:
            if pattern not in pattern_ids:
                pattern_ids[pattern] = len(patterns)
                patterns.append(pattern)
                supports.append(support)
                transitions.append({})
            return pattern_ids[pattern]

        n_tokenized = 0
        for run in runs:
            tokens = cls._tokenize(run, ordered)
            if not tokens:
                continue
            n_tokenized += 1
            ids = [state_id(p, s) for p, s in tokens]
            start_counts[ids[0]] = start_counts.get(ids[0], 0) + 1
            accept_counts[ids[-1]] = accept_counts.get(ids[-1], 0) + 1
            for a, b in zip(ids, ids[1:]):
                transitions[a][b] = transitions[a].get(b, 0) + 1

        endpoint_floor = edge_min_sup * n_tokenized
        edge_floor = edge_min_sup * n_tokenized / 2.0

        def keep(counts: Dict[int, int], floor: float) -> Set[int]:
            kept = {s for s, c in counts.items() if c >= floor}
            return kept if kept else set(counts)

        starts = keep(start_counts, endpoint_floor)
        accepts = keep(accept_counts, endpoint_floor)
        pruned_transitions = []
        for trans in transitions:
            kept_edges = {t for t, c in trans.items() if c >= edge_floor}
            pruned_transitions.append(
                frozenset(kept_edges if kept_edges else trans)
            )

        return cls(
            patterns=tuple(patterns),
            transitions=tuple(pruned_transitions),
            start_states=frozenset(starts),
            accept_states=frozenset(accepts),
            support=tuple(supports),
        )

    @staticmethod
    def _tokenize(
        run: Sequence[Label],
        ordered_states: Sequence[Tuple[Pattern, int]],
    ) -> List[Tuple[Pattern, int]]:
        """Greedy longest-then-most-frequent tokenization of one run.

        Falls back to a singleton pattern when no mined state matches at a
        position (possible after closed pruning when a flow appears in an
        unusual context); the singleton gets support 1.
        """
        tokens: List[Tuple[Pattern, int]] = []
        i = 0
        n = len(run)
        while i < n:
            chosen: Optional[Tuple[Pattern, int]] = None
            for pattern, support in ordered_states:
                m = len(pattern)
                if i + m <= n and tuple(run[i : i + m]) == pattern:
                    chosen = (pattern, support)
                    break
            if chosen is None:
                chosen = ((run[i],), 1)
            tokens.append(chosen)
            i += len(chosen[0])
        return tokens

    # ------------------------------------------------------------------
    # Properties and acceptance
    # ------------------------------------------------------------------

    @property
    def n_states(self) -> int:
        """Number of automaton states."""
        return len(self.patterns)

    def start_labels(self) -> Set[Label]:
        """The labels that can begin a match (first flow of start states)."""
        return {
            self.patterns[s][0] for s in self.start_states if self.patterns[s]
        }

    def flat_labels(self) -> Set[Label]:
        """Every label appearing in any state pattern."""
        out: Set[Label] = set()
        for pattern in self.patterns:
            out.update(pattern)
        return out

    def to_dot(self, name: str = "task") -> str:
        """Render the automaton in Graphviz DOT format (for debugging).

        Start states get a bold border, accept states a double circle;
        each node is labeled with its flow pattern, one flow per line.
        """
        lines = [f'digraph "{name}" {{', "  rankdir=LR;"]
        for i, pattern in enumerate(self.patterns):
            label = "\\n".join(str(f) for f in pattern)
            shape = "doublecircle" if i in self.accept_states else "ellipse"
            style = ', style=bold' if i in self.start_states else ""
            lines.append(f'  s{i} [label="{label}", shape={shape}{style}];')
        for i, succs in enumerate(self.transitions):
            for j in sorted(succs):
                lines.append(f"  s{i} -> s{j};")
        lines.append("}")
        return "\n".join(lines)

    def accepts(self, run: Sequence[Label]) -> bool:
        """Exact acceptance: does ``run`` tokenize into a valid path?

        Used to sanity-check that the automaton precisely represents its
        training runs ("all extracted logs can be precisely represented by
        the constructed automata").
        """
        ordered = sorted(
            (
                (p, self.support[i])
                for i, p in enumerate(self.patterns)
            ),
            key=lambda kv: (-len(kv[0]), -kv[1], repr(kv[0])),
        )
        tokens = self._tokenize(run, ordered)
        ids: List[int] = []
        lookup = {p: i for i, p in enumerate(self.patterns)}
        for pattern, _ in tokens:
            if pattern not in lookup:
                return False
            ids.append(lookup[pattern])
        if not ids:
            return False
        if ids[0] not in self.start_states or ids[-1] not in self.accept_states:
            return False
        return all(b in self.transitions[a] for a, b in zip(ids, ids[1:]))
