"""Online task detection: matching automata against a log's flow stream.

Implements the detection process of Section III-D: whenever a flow matches
the start state of a learned automaton, a matcher is spawned from that
point; the stream then drives all live matchers in parallel. Matching is
*flexible* — foreign flows interleave freely — but a matcher that goes
longer than the interleaving threshold (1 second in the paper) without
progress is terminated. Matchers reaching an accept state emit a
:class:`TaskEvent` into the task time series.

Matching a **masked** automaton against concrete traffic requires
unification: a ``#k`` placeholder binds to the first concrete host it
meets and must resolve to the same host for the rest of the match (and two
placeholders may not share a host); service labels must match the known
service mapping; a ``*`` port matches anything. This is what makes one
VM's learned startup automaton match — or deliberately fail to match —
another VM's startup (Table III).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, FrozenSet, Hashable, List, Mapping, Optional, Sequence, Tuple

from repro.core.tasks.automaton import TaskAutomaton
from repro.openflow.match import FlowKey, MaskedFlow

TimedFlow = Tuple[float, FlowKey]
Bindings = Tuple[Tuple[str, str], ...]  # placeholder -> concrete host, sorted


@dataclass(frozen=True)
class TaskEvent:
    """One detected operator-task occurrence in the task time series.

    Attributes:
        name: the task-type label.
        t_start: time of the first matched flow.
        t_end: time of the accepting flow.
        hosts: concrete hosts involved in the matched flows (placeholders
            resolved) — what change validation intersects with a change's
            components.
    """

    name: str
    t_start: float
    t_end: float
    hosts: FrozenSet[str] = frozenset()

    def covers(self, timestamp: float, slack: float = 1.0) -> bool:
        """Whether ``timestamp`` falls within the event (plus slack)."""
        return self.t_start - slack <= timestamp <= self.t_end + slack


def unify_label(
    label: Hashable,
    key: FlowKey,
    bindings: Dict[str, str],
    service_names: Mapping[str, str],
) -> Optional[Dict[str, str]]:
    """Try to match one automaton label against a concrete flow.

    Supports two label types: a raw :class:`FlowKey` (strict equality) and
    a :class:`MaskedFlow` template with placeholder/service/wildcard
    semantics. Returns the extended bindings on success, None on failure.
    """
    if isinstance(label, FlowKey):
        return dict(bindings) if label == key else None
    if not isinstance(label, MaskedFlow):
        return None

    new = dict(bindings)
    for tmpl_host, concrete in ((label.src, key.src), (label.dst, key.dst)):
        if tmpl_host.startswith("#"):
            bound = new.get(tmpl_host)
            if bound is None:
                # Injectivity: one concrete host per placeholder.
                if concrete in new.values():
                    return None
                new[tmpl_host] = concrete
            elif bound != concrete:
                return None
        else:
            service_label = service_names.get(concrete)
            if tmpl_host != concrete and tmpl_host != service_label:
                return None
    if label.src_port != "*" and label.src_port != str(key.src_port):
        return None
    if label.dst_port != "*" and label.dst_port != str(key.dst_port):
        return None
    return new


@dataclass(frozen=True)
class _Config:
    """One live matcher configuration (an NFA thread)."""

    task: str
    state: int
    pos: int
    bindings: Bindings
    started_at: float
    last_match_at: float
    hosts: FrozenSet[str]


class TaskDetector:
    """Scans timed flows with a set of task automata, emitting TaskEvents.

    Args:
        automata: task name -> automaton.
        service_names: concrete-host -> service-label mapping used during
            masked unification.
        interleave_threshold: maximum silence (seconds) a matcher survives
            without advancing — the paper bounds it at 1 second.
        max_configs: cap on simultaneous matcher threads (resource bound
            for hostile/noisy streams).
    """

    def __init__(
        self,
        automata: Mapping[str, TaskAutomaton],
        service_names: Optional[Mapping[str, str]] = None,
        interleave_threshold: float = 1.0,
        max_configs: int = 2000,
    ) -> None:
        self.automata = dict(automata)
        self.service_names = dict(service_names or {})
        self.interleave_threshold = interleave_threshold
        self.max_configs = max_configs

    # ------------------------------------------------------------------

    def detect(self, flows: Sequence[TimedFlow]) -> List[TaskEvent]:
        """Produce the task time series for a flow stream.

        Overlapping detections of the same task are merged (the earliest
        spanning event wins), matching the paper's one-event-per-task-run
        time series.
        """
        configs: List[_Config] = []
        events: List[TaskEvent] = []

        for t, key in sorted(flows, key=lambda tf: tf[0]):
            configs = [
                c
                for c in configs
                if t - c.last_match_at <= self.interleave_threshold
            ]
            advanced: List[_Config] = []
            accepted: List[_Config] = []
            for config in configs:
                for nxt in self._advance(config, t, key):
                    if self._is_accepting(nxt):
                        accepted.append(nxt)
                    advanced.append(nxt)
            # Spawn fresh matchers where this flow could begin a task.
            for name, automaton in self.automata.items():
                for sid in automaton.start_states:
                    pattern = automaton.patterns[sid]
                    if not pattern:
                        continue
                    bindings = unify_label(pattern[0], key, {}, self.service_names)
                    if bindings is None:
                        continue
                    config = _Config(
                        task=name,
                        state=sid,
                        pos=1,
                        bindings=tuple(sorted(bindings.items())),
                        started_at=t,
                        last_match_at=t,
                        hosts=frozenset({key.src, key.dst}),
                    )
                    if self._is_accepting(config):
                        accepted.append(config)
                    advanced.append(config)

            # Noise tolerance: configurations that did not advance survive
            # (until the interleaving threshold reaps them).
            configs.extend(advanced)
            configs = self._dedup(configs)[-self.max_configs :]

            for config in accepted:
                event = TaskEvent(
                    name=config.task,
                    t_start=config.started_at,
                    t_end=t,
                    hosts=config.hosts,
                )
                if self._is_new_event(events, event):
                    events.append(event)
                # Retire sibling threads of the same detection.
                configs = [
                    c
                    for c in configs
                    if not (
                        c.task == config.task
                        and c.started_at >= config.started_at - 1e-9
                    )
                ]
        events.sort(key=lambda e: e.t_start)
        return events

    # ------------------------------------------------------------------

    def _advance(self, config: _Config, t: float, key: FlowKey) -> List[_Config]:
        automaton = self.automata[config.task]
        pattern = automaton.patterns[config.state]
        bindings = dict(config.bindings)
        out: List[_Config] = []
        if config.pos < len(pattern):
            new = unify_label(pattern[config.pos], key, bindings, self.service_names)
            if new is not None:
                out.append(
                    replace(
                        config,
                        pos=config.pos + 1,
                        bindings=tuple(sorted(new.items())),
                        last_match_at=t,
                        hosts=config.hosts | {key.src, key.dst},
                    )
                )
        else:
            for succ in automaton.transitions[config.state]:
                succ_pattern = automaton.patterns[succ]
                if not succ_pattern:
                    continue
                new = unify_label(succ_pattern[0], key, bindings, self.service_names)
                if new is not None:
                    out.append(
                        replace(
                            config,
                            state=succ,
                            pos=1,
                            bindings=tuple(sorted(new.items())),
                            last_match_at=t,
                            hosts=config.hosts | {key.src, key.dst},
                        )
                    )
        return out

    def _is_accepting(self, config: _Config) -> bool:
        automaton = self.automata[config.task]
        return (
            config.state in automaton.accept_states
            and config.pos == len(automaton.patterns[config.state])
        )

    @staticmethod
    def _dedup(configs: List[_Config]) -> List[_Config]:
        seen = set()
        out = []
        for c in configs:
            sig = (c.task, c.state, c.pos, c.bindings, c.started_at)
            if sig not in seen:
                seen.add(sig)
                out.append(c)
        return out

    @staticmethod
    def _is_new_event(events: List[TaskEvent], event: TaskEvent) -> bool:
        for prior in events:
            if prior.name == event.name and not (
                event.t_end < prior.t_start or event.t_start > prior.t_end
            ):
                return False
        return True
