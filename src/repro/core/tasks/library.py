"""The task library: learn automata from runs, detect tasks in logs.

Ties the mining, automaton, and detection pieces together behind the
workflow the paper describes: capture multiple runs of each operator task,
reduce them to common flows, mine states, build the automaton (optionally
with IP masking so one VM's task generalizes to all VMs), then scan
controller logs to produce task time series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.core.events import timed_flows
from repro.core.tasks.automaton import TaskAutomaton
from repro.core.tasks.detector import TaskDetector, TaskEvent, TimedFlow
from repro.core.tasks.mining import common_flows, filter_to_common
from repro.openflow.log import ControllerLog
from repro.openflow.match import MaskedFlow, mask_flows


@dataclass(frozen=True)
class TaskSignature:
    """A learned task: its automaton plus learning metadata.

    Attributes:
        name: task-type label.
        automaton: the acceptor.
        masked: whether host identities were generalized to placeholders.
        n_runs: how many training runs produced it.
        min_sup: the support threshold used.
    """

    name: str
    automaton: TaskAutomaton
    masked: bool
    n_runs: int
    min_sup: float


class TaskLibrary:
    """Learned task signatures and the detection entry point.

    Args:
        service_names: concrete-host -> service-label mapping (the operator
            domain knowledge); consistent between learning and detection.
        interleave_threshold: matcher noise tolerance in seconds.
    """

    def __init__(
        self,
        service_names: Optional[Mapping[str, str]] = None,
        interleave_threshold: float = 1.0,
    ) -> None:
        self.service_names = dict(service_names or {})
        self.interleave_threshold = interleave_threshold
        self.signatures: Dict[str, TaskSignature] = {}

    # ------------------------------------------------------------------
    # Learning
    # ------------------------------------------------------------------

    def labeled_runs(
        self,
        runs: Sequence[Sequence[TimedFlow]],
        masked: bool = True,
    ) -> List[List[MaskedFlow]]:
        """Convert timed-flow runs into label sequences for mining.

        Flows are time-ordered and converted to :class:`MaskedFlow`
        templates — with or without host masking — using the library's
        service mapping so well-known services keep their identity.
        """
        labeled = []
        for run in runs:
            ordered = [key for _, key in sorted(run, key=lambda tf: tf[0])]
            labeled.append(
                mask_flows(
                    ordered,
                    service_names=self.service_names,
                    mask_hosts=masked,
                )
            )
        return labeled

    def learn(
        self,
        name: str,
        runs: Sequence[Sequence[TimedFlow]],
        min_sup: float = 0.6,
        masked: bool = True,
        max_pattern_length: int = 0,
        edge_min_sup: float = 0.3,
    ) -> TaskSignature:
        """Learn one task's signature from multiple training runs.

        Implements the paper's three stages: common flows across runs,
        frequent/closed pattern mining, automaton construction.
        ``edge_min_sup`` controls outlier pruning of start/accept states
        (see :meth:`repro.core.tasks.automaton.TaskAutomaton.build`).

        Raises:
            ValueError: if no runs are given or they share no flows.
        """
        if not runs:
            raise ValueError(f"no training runs for task {name!r}")
        labeled = self.labeled_runs(runs, masked=masked)
        common = common_flows(labeled)
        if not common:
            raise ValueError(
                f"training runs for task {name!r} share no common flows"
            )
        filtered = filter_to_common(labeled, common)
        automaton = TaskAutomaton.build(
            filtered,
            min_sup=min_sup,
            max_pattern_length=max_pattern_length,
            edge_min_sup=edge_min_sup,
        )
        signature = TaskSignature(
            name=name,
            automaton=automaton,
            masked=masked,
            n_runs=len(runs),
            min_sup=min_sup,
        )
        self.signatures[name] = signature
        return signature

    def learn_from_logs(
        self,
        name: str,
        logs: Sequence[ControllerLog],
        min_sup: float = 0.6,
        masked: bool = True,
        dedup_window: float = 0.0,
    ) -> TaskSignature:
        """Learn from controller-log captures (one log per task run)."""
        runs = [timed_flows(log, dedup_window=dedup_window) for log in logs]
        return self.learn(name, runs, min_sup=min_sup, masked=masked)

    # ------------------------------------------------------------------
    # Detection
    # ------------------------------------------------------------------

    def detector(self) -> TaskDetector:
        """A detector over every learned signature."""
        return TaskDetector(
            automata={
                name: sig.automaton for name, sig in self.signatures.items()
            },
            service_names=self.service_names,
            interleave_threshold=self.interleave_threshold,
        )

    def detect(self, flows: Sequence[TimedFlow]) -> List[TaskEvent]:
        """The task time series of a flow stream."""
        return self.detector().detect(flows)

    def detect_in_log(
        self, log: ControllerLog, dedup_window: float = 0.05
    ) -> List[TaskEvent]:
        """The task time series of a controller log.

        ``dedup_window`` collapses the per-switch PacketIn fan-out of each
        flow so one traversal is one detection input.
        """
        return self.detect(timed_flows(log, dedup_window=dedup_window))
