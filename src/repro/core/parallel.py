"""Sharded, incremental modeling: the parallel path behind ``FlowDiff.model``.

The serial modeling path decodes the whole log once for the model and
then, for stability assessment, re-decodes it ``parts + 1`` more times
(one full rebuild plus one windowed rebuild per sub-interval). This
module replaces all of that with a single sharded pass, the shape the
paper's Figure 13 scalability argument needs:

1. **Shard** the log into time slices (aligned with the stability
   sub-intervals whenever possible, so shard work doubles as stability
   work) and, per shard, group ``PacketIn``/``FlowMod`` pairs into
   per-flow occurrence *runs* — in a ``ProcessPoolExecutor`` when more
   than one CPU is available, inline otherwise.
2. **Stitch** runs that straddle shard boundaries: a head run whose first
   report falls within ``occurrence_gap`` of the previous shard's tail
   run is the *same* occurrence and is joined, not double-counted. The
   stitched arrival stream is byte-identical to the serial extraction.
3. **Derive** per-shard interval signatures inside the workers (same
   semantics as the serial path's ``log.window(a, b)`` rebuilds: runs
   truncated at slice bounds, ``FlowMod``/``FlowRemoved`` pairings
   restricted to the slice) and hand them to
   :func:`~repro.core.stability.assess_stability` instead of re-decoding.

Exactness is load-bearing: ``model_to_dict(serial) ==
model_to_dict(parallel)`` is asserted by tests. Two log shapes cannot be
sharded without changing pairing semantics — ``FlowMod`` replies lacking
``in_reply_to`` (the ordered fallback consumption is stateful across the
whole window) and duplicate reply ids (the winning reply would depend on
the slice) — and for those :func:`parallel_model` declines, the caller
falls back to the serial path, and a ``flowdiff_parallel_fallback_total``
counter records why.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.timeseries import split_intervals
from repro.core.events import (
    FlowArrival,
    HopReport,
    arrival_sort_key,
    build_occurrence_runs,
    interval_flow_records,
    join_flow_records,
    partition_log,
    splits_occurrence,
)
from repro.core.model import BehaviorModel
from repro.core.signatures.application import (
    ApplicationSignature,
    build_application_signatures,
)
from repro.core.signatures.infrastructure import build_infrastructure_signature
from repro.core.stability import assess_stability
from repro.openflow.log import ControllerLog
from repro.openflow.match import FlowKey

#: A run of hop reports belonging to one flow occurrence (mutable while
#: being grown/stitched, frozen into a FlowArrival at the end).
Run = List[HopReport]

#: Worker-shared state for the fork-based pool: set by the parent just
#: before the fan-out so children inherit it copy-on-write instead of
#: receiving multi-megabyte pickled arguments per task.
_SHARED: Optional[Dict[str, Any]] = None


def default_shard_count(jobs: int) -> int:
    """Shard count when stability alignment doesn't dictate one."""
    return max(2, min(max(jobs, 2), 8))


def _effective_workers(jobs: int, n_shards: int) -> int:
    import os

    cpus = os.cpu_count() or 1
    try:
        cpus = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        pass
    return max(1, min(jobs, n_shards, cpus))


def _fork_available() -> bool:
    import multiprocessing

    return "fork" in multiprocessing.get_all_start_methods()


def _extract_shard(
    index: int,
) -> Tuple[int, Dict[FlowKey, List[Run]], Optional[Dict[str, ApplicationSignature]], float]:
    """Worker: group one shard's PacketIns into per-flow occurrence runs.

    Reads the module-global :data:`_SHARED` plan (inherited via fork, or
    set directly in inline mode). Head and tail runs are provisional —
    the parent stitches them across shard boundaries. When the shard
    doubles as a stability interval, the interval's application
    signatures are built here too, from an interval-semantics view of the
    same runs (truncated at the bounds, out-of-slice pairings dropped).
    """
    shared = _SHARED
    assert shared is not None, "_extract_shard called without a shard plan"
    started = time.perf_counter()
    runs = build_occurrence_runs(
        shared["pins_by_shard"][index],
        shared["mods_by_reply"],
        shared["occurrence_gap"],
    )

    interval_sigs: Optional[Dict[str, ApplicationSignature]] = None
    if shared["build_interval_sigs"]:
        a, b = shared["bounds"][index]
        # Interval semantics mirror the serial `log.window(a, b)` rebuild
        # (see interval_flow_records): the trailing truncation only bites
        # in the final shard, which also holds the ts == t_end reports
        # for the *full* view.
        interval_records = interval_flow_records(
            runs, shared["removed_by_shard"][index], a, b
        )
        interval_sigs = build_application_signatures(
            None, shared["sig_config"], window=(a, b), records=interval_records
        )
    return index, runs, interval_sigs, time.perf_counter() - started


def _stitch(
    shard_runs: Sequence[Dict[FlowKey, List[Run]]], occurrence_gap: float
) -> List[FlowArrival]:
    """Merge per-shard runs into the full-window arrival stream.

    A shard's head run continues the previous shard's tail run when the
    boundary gap is within ``occurrence_gap`` — the same predicate the
    serial extractor applies between consecutive reports, so every gap
    decision the serial path makes is made here exactly once too (shards
    with no reports for a flow chain the decision across to the next
    shard that has some).
    """
    merged: Dict[FlowKey, List[Run]] = {}
    for runs in shard_runs:
        for flow, flow_runs in runs.items():
            existing = merged.get(flow)
            if existing is None:
                merged[flow] = flow_runs
                continue
            head = flow_runs[0]
            tail = existing[-1]
            if not splits_occurrence(
                tail[-1].packet_in_at, head[0].packet_in_at, occurrence_gap
            ):
                tail.extend(head)
                existing.extend(flow_runs[1:])
            else:
                existing.extend(flow_runs)
    arrivals = [
        FlowArrival(flow=flow, time=hops[0].packet_in_at, hops=tuple(hops))
        for flow, flow_runs in merged.items()
        for hops in flow_runs
    ]
    arrivals.sort(key=arrival_sort_key)
    return arrivals


def parallel_model(
    flowdiff: Any,
    log: ControllerLog,
    window: Tuple[float, float],
    assess: bool,
    n_shards: Optional[int] = None,
    use_processes: Optional[bool] = None,
) -> Optional[BehaviorModel]:
    """Build a behavior model via the sharded pipeline, or ``None``.

    Returns ``None`` when the log cannot be sharded exactly (see module
    docstring) or is degenerate — the caller then runs the serial path.

    Args:
        flowdiff: the owning :class:`~repro.core.flowdiff.FlowDiff`
            (supplies config, tracer, metrics).
        log: the controller capture.
        window: the model window (already defaulted by the caller).
        assess: whether stability assessment was requested.
        n_shards: override the shard count (tests use this to force
            boundary splits); default aligns with the stability intervals
            when possible, else :func:`default_shard_count`.
        use_processes: force the pool on/off; default uses processes only
            when more than one worker can actually run in parallel.
    """
    global _SHARED
    config = flowdiff.config
    tracer = flowdiff.tracer
    metrics = flowdiff.metrics
    span_start, span_end = log.time_span
    if span_end <= span_start:
        return None

    parts = config.stability_parts if (assess and config.stability_parts >= 2) else 0
    aligned = parts >= 2 and tuple(window) == (span_start, span_end)
    if n_shards is None:
        n = parts if aligned else default_shard_count(config.jobs)
    else:
        n = max(1, n_shards)
        aligned = aligned and n == parts
    bounds = split_intervals(span_start, span_end, n)

    with tracer.span("shard-plan", shards=n):
        partition, fallback_reason = partition_log(log, bounds)

    if partition is None:
        metrics.counter(
            "flowdiff_parallel_fallback_total", reason=fallback_reason
        ).inc()
        return None
    mods_by_reply = partition.mods_by_reply
    pins_by_shard = partition.pins_by_interval
    removed_by_shard = partition.removed_by_interval
    removed_all = partition.removed_all
    port_down = partition.port_down

    workers = _effective_workers(config.jobs, n)
    if use_processes is None:
        use_processes = workers > 1
    use_processes = use_processes and _fork_available()

    shared: Dict[str, Any] = {
        "pins_by_shard": pins_by_shard,
        "removed_by_shard": removed_by_shard,
        "mods_by_reply": mods_by_reply,
        "bounds": bounds,
        "occurrence_gap": config.signature.occurrence_gap,
        "sig_config": config.signature,
        "build_interval_sigs": aligned,
    }
    shard_runs: List[Optional[Dict[FlowKey, List[Run]]]] = [None] * n
    interval_sigs: List[Optional[Dict[str, ApplicationSignature]]] = [None] * n
    m_shard_seconds = metrics.histogram("flowdiff_shard_seconds")
    with tracer.span("shard-extract", shards=n, workers=workers if use_processes else 1):
        _SHARED = shared
        try:
            if use_processes:
                # Fork inherits the plan copy-on-write; workers return
                # compact runs + signatures rather than re-pickling input.
                import multiprocessing

                ctx = multiprocessing.get_context("fork")
                with ProcessPoolExecutor(max_workers=workers, mp_context=ctx) as pool:
                    results = list(pool.map(_extract_shard, range(n)))
            else:
                results = [_extract_shard(i) for i in range(n)]
        finally:
            _SHARED = None
        for index, runs, sigs, took in results:
            shard_runs[index] = runs
            interval_sigs[index] = sigs
            m_shard_seconds.observe(took)
    metrics.counter("flowdiff_parallel_shards_total").inc(n)

    merge_started = time.perf_counter()
    with tracer.span("stitch"):
        arrivals = _stitch(
            [runs for runs in shard_runs if runs is not None],
            config.signature.occurrence_gap,
        )
    with tracer.span("join"):
        records = join_flow_records(arrivals, removed_all)
    with tracer.span("app-signature"):
        app_sigs = build_application_signatures(
            log, config.signature, window=window, records=records
        )
    with tracer.span("infra-signature"):
        infra = build_infrastructure_signature(
            [r.arrival for r in records], port_down_events=port_down
        )
    stability: Dict[Any, bool] = {}
    if parts >= 2:
        with tracer.span("stability"):
            stability = assess_stability(
                log,
                config.signature,
                parts=parts,
                thresholds=config.stability,
                window=window,
                full=app_sigs,
                per_interval=list(interval_sigs) if aligned else None,  # type: ignore[arg-type]
            )
    metrics.histogram("flowdiff_merge_seconds").observe(
        time.perf_counter() - merge_started
    )
    return BehaviorModel(
        app_signatures=app_sigs,
        infrastructure=infra,
        window=tuple(window),
        stability=stability,
    )
