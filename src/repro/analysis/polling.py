"""Utilization from polled flow counters (Section I).

Besides the reactive PacketIn/FlowRemoved stream, "the central controller
can also poll flow counters on switches to learn utilization". When stats
polling is enabled (:meth:`repro.netsim.network.Network.enable_stats_polling`),
the log contains periodic ``FlowStatsReply`` snapshots; this module turns
the per-entry counter deltas into per-switch throughput series — the raw
material for utilization baselines and hot-spot spotting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.stats import mean_std
from repro.openflow.log import ControllerLog
from repro.openflow.messages import FlowStatsReply


@dataclass(frozen=True)
class ThroughputPoint:
    """One poll interval's aggregated throughput at a switch."""

    timestamp: float
    bytes_per_sec: float


def switch_throughput(
    log: ControllerLog,
    bucket: float = 1.0,
) -> Dict[str, List[ThroughputPoint]]:
    """Per-switch throughput series from polled counter snapshots.

    Counter deltas between consecutive snapshots of the same entry are
    attributed to the later snapshot's poll time and aggregated per switch
    per ``bucket`` seconds. Entries seen for the first time contribute
    their full counter (they accumulated since installation). Counter
    *decreases* (an entry expired and a new one reused the match) are
    treated as a fresh entry.

    Returns:
        ``{dpid: [ThroughputPoint, ...]}`` sorted by time; switches that
        never reported stats are absent.
    """
    last_seen: Dict[Tuple[str, object], int] = {}
    buckets: Dict[str, Dict[int, float]] = {}
    t0 = None
    for msg in log.of_type(FlowStatsReply):
        if t0 is None:
            t0 = msg.timestamp
        key = (msg.dpid, msg.match)
        prev = last_seen.get(key, 0)
        delta = msg.byte_count - prev if msg.byte_count >= prev else msg.byte_count
        last_seen[key] = msg.byte_count
        if delta <= 0:
            continue
        idx = int((msg.timestamp - t0) // bucket)
        per_switch = buckets.setdefault(msg.dpid, {})
        per_switch[idx] = per_switch.get(idx, 0.0) + delta

    out: Dict[str, List[ThroughputPoint]] = {}
    if t0 is None:
        return out
    for dpid, series in buckets.items():
        out[dpid] = [
            ThroughputPoint(timestamp=t0 + idx * bucket, bytes_per_sec=v / bucket)
            for idx, v in sorted(series.items())
        ]
    return out


def busiest_switches(
    log: ControllerLog, bucket: float = 1.0, top: int = 5
) -> List[Tuple[str, float]]:
    """Switches ranked by mean polled throughput, busiest first."""
    ranked = []
    for dpid, series in switch_throughput(log, bucket).items():
        mean, _ = mean_std([p.bytes_per_sec for p in series])
        ranked.append((dpid, mean))
    ranked.sort(key=lambda kv: (-kv[1], kv[0]))
    return ranked[:top]
