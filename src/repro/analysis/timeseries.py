"""Epoch bucketing and interval splitting for timestamped event streams.

The partial-correlation signature divides the logging interval into equally
spaced *epochs* and counts PacketIn events per epoch per connectivity-graph
edge, producing the time series over which Pearson's coefficient is computed
(Section III-B). Stability analysis likewise partitions a log into several
sub-intervals and rebuilds signatures per interval (Section III-B, last
paragraph). Both operations live here.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


def epoch_edges(t_start: float, t_end: float, epoch: float) -> List[float]:
    """Return the bucket boundary timestamps covering ``[t_start, t_end)``.

    The final epoch is truncated at ``t_end`` (the boundary list always ends
    exactly at ``t_end``), so partial trailing epochs are represented rather
    than silently dropped.

    Raises:
        ValueError: if ``epoch`` is not positive or the interval is inverted.
    """
    if epoch <= 0:
        raise ValueError(f"epoch must be positive, got {epoch}")
    if t_end < t_start:
        raise ValueError(f"inverted interval [{t_start}, {t_end}]")
    edges = [t_start]
    t = t_start
    while t + epoch < t_end:
        t += epoch
        edges.append(t)
    edges.append(t_end)
    return edges


def epoch_counts(
    timestamps: Sequence[float],
    t_start: float,
    t_end: float,
    epoch: float,
) -> List[int]:
    """Count events per epoch over ``[t_start, t_end)``.

    Events outside the interval are ignored; an event exactly at ``t_end``
    belongs to no epoch. The result has ``len(epoch_edges(...)) - 1`` cells.
    """
    edges = epoch_edges(t_start, t_end, epoch)
    counts = [0] * (len(edges) - 1)
    span = len(counts)
    for ts in timestamps:
        if ts < t_start or ts >= t_end:
            continue
        idx = int((ts - t_start) // epoch)
        if idx >= span:
            idx = span - 1
        counts[idx] += 1
    return counts


def split_intervals(
    t_start: float, t_end: float, parts: int
) -> List[Tuple[float, float]]:
    """Split ``[t_start, t_end)`` into ``parts`` equal sub-intervals.

    Used by the stability checker: a signature is stable when it does not
    change significantly across the sub-interval signatures.

    Raises:
        ValueError: if ``parts`` is not positive or the interval is inverted.
    """
    if parts <= 0:
        raise ValueError(f"parts must be positive, got {parts}")
    if t_end < t_start:
        raise ValueError(f"inverted interval [{t_start}, {t_end}]")
    width = (t_end - t_start) / parts
    return [
        (t_start + i * width, t_start + (i + 1) * width if i < parts - 1 else t_end)
        for i in range(parts)
    ]
