"""Statistical utilities shared across FlowDiff components.

This package provides the small, dependency-light statistical toolbox that
the signature builders and comparators rely on:

* :mod:`repro.analysis.stats` -- Pearson and partial correlation, the
  chi-squared fitness statistic used for component-interaction comparison,
  empirical CDFs, and histogram peak extraction for delay distributions.
* :mod:`repro.analysis.timeseries` -- epoch bucketing of timestamped events
  into fixed-width counting windows, as used by the partial-correlation
  signature, plus summary helpers.
"""

from repro.analysis.stats import (
    EmpiricalCDF,
    chi_squared,
    histogram_peaks,
    mean_std,
    partial_correlation,
    pearson,
)
from repro.analysis.plotting import ascii_bars, ascii_cdf, ascii_series
from repro.analysis.polling import (
    ThroughputPoint,
    busiest_switches,
    switch_throughput,
)
from repro.analysis.timeseries import (
    epoch_counts,
    epoch_edges,
    split_intervals,
)

__all__ = [
    "EmpiricalCDF",
    "chi_squared",
    "histogram_peaks",
    "mean_std",
    "partial_correlation",
    "pearson",
    "epoch_counts",
    "epoch_edges",
    "split_intervals",
    "ThroughputPoint",
    "busiest_switches",
    "switch_throughput",
    "ascii_bars",
    "ascii_cdf",
    "ascii_series",
]
