"""Core statistics used by FlowDiff signatures and comparators.

The paper relies on a handful of classical statistics:

* Pearson's correlation coefficient over epoch-bucketed flow counts for the
  partial-correlation (PC) application signature (Section III-B).
* A chi-squared fitness test between flow-count distributions for the
  component-interaction (CI) comparison (Section IV-A).
* Peaks of delay-frequency histograms for the delay-distribution (DD)
  signature (Section III-B).
* Mean / standard deviation summaries for inter-switch latency (ISL) and
  controller response time (CRT) infrastructure signatures (Section III-C).

All helpers are implemented over plain sequences so they remain usable on
streams decoded from controller logs without intermediate copies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple


def mean_std(values: Sequence[float]) -> Tuple[float, float]:
    """Return the sample mean and population standard deviation.

    FlowDiff summarizes noisy per-measurement quantities (inter-switch
    latencies, controller response times) by their first two moments rather
    than raw samples, because individual latencies vary with switch
    processing time (Section III-C).

    Args:
        values: observed samples; may be empty.

    Returns:
        ``(mean, std)``; ``(0.0, 0.0)`` for an empty input so callers can
        treat "no measurements" as a degenerate but comparable summary.
    """
    n = len(values)
    if n == 0:
        return 0.0, 0.0
    mean = sum(values) / n
    var = sum((v - mean) ** 2 for v in values) / n
    return mean, math.sqrt(var)


def pearson(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson's correlation coefficient between two equal-length series.

    Returns 0.0 when either series is constant (zero variance) or when the
    series are shorter than two points; the paper treats such degenerate
    edges as uncorrelated rather than undefined so that signature comparison
    never propagates NaNs.

    Raises:
        ValueError: if the two series differ in length.
    """
    if len(xs) != len(ys):
        raise ValueError(
            f"series length mismatch: {len(xs)} vs {len(ys)}"
        )
    n = len(xs)
    if n < 2:
        return 0.0
    mx = sum(xs) / n
    my = sum(ys) / n
    sxy = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    sxx = sum((x - mx) ** 2 for x in xs)
    syy = sum((y - my) ** 2 for y in ys)
    # Multiply the roots (not root the product) to dodge underflow when
    # both variances are tiny but non-zero.
    denom = math.sqrt(sxx) * math.sqrt(syy)
    if denom <= 0.0:
        return 0.0
    r = sxy / denom
    # Guard against floating point drift outside [-1, 1].
    return max(-1.0, min(1.0, r))


def partial_correlation(
    xs: Sequence[float],
    ys: Sequence[float],
    zs: Sequence[float],
) -> float:
    """Partial correlation of ``xs`` and ``ys`` controlling for ``zs``.

    The PC signature quantifies the strength of the dependency between
    adjacent edges of a connectivity graph. When a confounding series is
    available (e.g., a shared upstream edge), the first-order partial
    correlation removes its influence:

    ``r_xy.z = (r_xy - r_xz * r_yz) / sqrt((1 - r_xz^2)(1 - r_yz^2))``

    Falls back to the plain Pearson coefficient when the controlling series
    is perfectly correlated with either input (the denominator vanishes).
    """
    r_xy = pearson(xs, ys)
    r_xz = pearson(xs, zs)
    r_yz = pearson(ys, zs)
    denom = math.sqrt((1.0 - r_xz**2) * (1.0 - r_yz**2))
    if denom <= 1e-12:
        return r_xy
    r = (r_xy - r_xz * r_yz) / denom
    return max(-1.0, min(1.0, r))


def chi_squared(observed: Sequence[float], expected: Sequence[float]) -> float:
    """Chi-squared fitness statistic between observed and expected counts.

    Implements the paper's CI comparison (Section IV-A):

    ``chi^2 = sum_i (O_i - E_i)^2 / E_i``

    Expected-count cells equal to zero contribute the squared observed count
    (with a unit denominator) when the observation is non-zero, so the
    appearance of flows on a previously silent edge registers as a large
    deviation instead of a division error; matching zero cells contribute
    nothing.

    Raises:
        ValueError: if the two distributions differ in length.
    """
    if len(observed) != len(expected):
        raise ValueError(
            f"distribution length mismatch: {len(observed)} vs {len(expected)}"
        )
    total = 0.0
    for o, e in zip(observed, expected):
        if e > 0.0:
            total += (o - e) ** 2 / e
        elif o > 0.0:
            total += float(o) ** 2
    return total


def histogram_peaks(
    values: Sequence[float],
    bin_width: float,
    min_count: int = 1,
    max_peaks: int = 5,
) -> List[Tuple[float, int]]:
    """Extract the dominant peaks of a delay-frequency histogram.

    The DD signature uses "peaks of the delay distribution frequency"
    (Section III-B): delays between dependent flows cluster around the
    server's processing time, so the most frequent bin identifies it. The
    paper plots delays with 20 ms bins (Figure 10); ``bin_width`` makes the
    binning explicit.

    A bin is a peak if its count is a local maximum among neighbouring bins
    (plateaus count once, at their first bin). Peaks are returned as
    ``(bin_center, count)`` sorted by descending count and truncated to
    ``max_peaks``.

    Args:
        values: raw delay samples (seconds or milliseconds, caller's choice).
        bin_width: histogram bin width in the same unit as ``values``.
        min_count: discard peaks whose bin count is below this threshold.
        max_peaks: keep at most this many dominant peaks.

    Raises:
        ValueError: if ``bin_width`` is not positive.
    """
    if bin_width <= 0:
        raise ValueError(f"bin_width must be positive, got {bin_width}")
    if not values:
        return []
    counts: dict[int, int] = {}
    for v in values:
        counts[int(v // bin_width)] = counts.get(int(v // bin_width), 0) + 1
    indices = sorted(counts)
    peaks: List[Tuple[float, int]] = []
    for i, idx in enumerate(indices):
        c = counts[idx]
        left = counts.get(idx - 1, 0)
        right = counts.get(idx + 1, 0)
        # Local maximum; a plateau is attributed to its leftmost bin.
        if c >= min_count and c >= right and (c > left or left == 0 and i == 0):
            if c > left or (c == left and idx - 1 not in counts):
                peaks.append(((idx + 0.5) * bin_width, c))
    peaks.sort(key=lambda p: (-p[1], p[0]))
    return peaks[:max_peaks]


@dataclass(frozen=True)
class EmpiricalCDF:
    """An empirical cumulative distribution function over observed samples.

    Used to reproduce the CDF plots of Figure 9 (per-flow byte counts and
    inter-flow delays under injected faults) and to compare distributions via
    the Kolmogorov-Smirnov distance.
    """

    samples: Tuple[float, ...]

    @classmethod
    def from_values(cls, values: Iterable[float]) -> "EmpiricalCDF":
        """Build a CDF from an iterable of raw samples (sorted internally)."""
        return cls(samples=tuple(sorted(values)))

    def __call__(self, x: float) -> float:
        """Return ``P(X <= x)``; 0.0 for an empty sample set."""
        if not self.samples:
            return 0.0
        lo, hi = 0, len(self.samples)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.samples[mid] <= x:
                lo = mid + 1
            else:
                hi = mid
        return lo / len(self.samples)

    def quantile(self, q: float) -> float:
        """Return the smallest sample at or above quantile ``q`` in [0, 1].

        Raises:
            ValueError: if ``q`` is outside [0, 1] or the CDF is empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.samples:
            raise ValueError("quantile of an empty CDF is undefined")
        idx = min(len(self.samples) - 1, max(0, math.ceil(q * len(self.samples)) - 1))
        return self.samples[idx]

    def ks_distance(self, other: "EmpiricalCDF") -> float:
        """Two-sample Kolmogorov-Smirnov distance ``sup_x |F1(x) - F2(x)|``.

        A convenient scalar for asserting that a fault visibly shifted a
        distribution (Figure 9) without comparing absolute values.
        """
        if not self.samples or not other.samples:
            return 1.0 if (self.samples or other.samples) else 0.0
        points = sorted(set(self.samples) | set(other.samples))
        return max(abs(self(x) - other(x)) for x in points)

    def points(self) -> List[Tuple[float, float]]:
        """Return ``(value, fraction)`` pairs suitable for plotting."""
        n = len(self.samples)
        return [(v, (i + 1) / n) for i, v in enumerate(self.samples)]
