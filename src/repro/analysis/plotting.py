"""Terminal plotting: render CDFs and series as ASCII for bench reports.

The benchmark harness writes each figure's data rows to text files; these
helpers additionally render them as quick ASCII plots so a reader can see
the *shape* (the thing the reproduction targets) without leaving the
terminal. No plotting dependency needed or wanted.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.analysis.stats import EmpiricalCDF

#: Glyphs used for overlaid curves, in legend order.
CURVE_GLYPHS = "*o+x#@"


def ascii_cdf(
    curves: Dict[str, EmpiricalCDF],
    width: int = 60,
    height: int = 16,
    x_label: str = "value",
) -> str:
    """Render one or more CDF curves on a shared grid.

    Args:
        curves: legend label -> CDF; plotted with distinct glyphs.
        width/height: plot area size in characters.
        x_label: x-axis annotation.

    Returns:
        A multi-line string: the grid, an x-axis, and a legend.
    """
    non_empty = {k: c for k, c in curves.items() if c.samples}
    if not non_empty:
        return "(no data)"
    x_min = min(c.samples[0] for c in non_empty.values())
    x_max = max(c.samples[-1] for c in non_empty.values())
    if x_max <= x_min:
        x_max = x_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for idx, (_label, cdf) in enumerate(non_empty.items()):
        glyph = CURVE_GLYPHS[idx % len(CURVE_GLYPHS)]
        for col in range(width):
            x = x_min + (x_max - x_min) * col / (width - 1)
            y = cdf(x)
            row = height - 1 - min(height - 1, int(y * (height - 1) + 0.5))
            if grid[row][col] == " ":
                grid[row][col] = glyph

    lines = []
    for i, row in enumerate(grid):
        frac = 1.0 - i / (height - 1)
        lines.append(f"{frac:4.2f} |" + "".join(row))
    lines.append("     +" + "-" * width)
    lines.append(f"      {x_min:<12.4g}{' ' * max(0, width - 26)}{x_max:>12.4g}")
    lines.append(f"      x: {x_label}")
    for idx, label in enumerate(non_empty):
        lines.append(f"      {CURVE_GLYPHS[idx % len(CURVE_GLYPHS)]} {label}")
    return "\n".join(lines)


def ascii_series(
    points: Sequence[Tuple[float, float]],
    width: int = 60,
    height: int = 12,
    y_label: str = "",
) -> str:
    """Render an (x, y) series as a scatter/step plot."""
    if not points:
        return "(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    if x_max <= x_min:
        x_max = x_min + 1.0
    if y_max <= y_min:
        y_max = y_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y in points:
        col = min(width - 1, int((x - x_min) / (x_max - x_min) * (width - 1)))
        row = height - 1 - min(
            height - 1, int((y - y_min) / (y_max - y_min) * (height - 1) + 0.5)
        )
        grid[row][col] = "*"

    lines = []
    for i, row in enumerate(grid):
        value = y_max - (y_max - y_min) * i / (height - 1)
        lines.append(f"{value:10.3g} |" + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    lines.append(f"{'':11} {x_min:<12.4g}{' ' * max(0, width - 26)}{x_max:>12.4g}")
    if y_label:
        lines.append(f"{'':11} y: {y_label}")
    return "\n".join(lines)


def ascii_bars(
    values: Dict[str, float],
    width: int = 40,
    fmt: str = "{:.2f}",
) -> str:
    """Render labeled values as horizontal bars (for Figure 12-style data)."""
    if not values:
        return "(no data)"
    peak = max(abs(v) for v in values.values()) or 1.0
    label_width = max(len(k) for k in values)
    lines = []
    for label, value in values.items():
        bar = "#" * max(0, int(abs(value) / peak * width))
        lines.append(
            f"{label.ljust(label_width)} |{bar.ljust(width)}| "
            + fmt.format(value)
        )
    return "\n".join(lines)
