"""The discrete-event simulation core: a clock and a priority event queue.

Classic calendar-queue design: events are ``(time, sequence, callback)``
triples popped in time order, with the sequence number guaranteeing FIFO
order among simultaneous events (determinism matters because every
experiment is seeded and asserted on).
"""

from __future__ import annotations

import heapq
import time
from typing import Any, Callable, List, Optional, Tuple

from repro.obs.metrics import NOOP_REGISTRY, MetricsRegistry


class Simulator:
    """A deterministic discrete-event simulator.

    Typical use::

        sim = Simulator()
        sim.schedule_at(1.0, lambda: ...)
        sim.run(until=10.0)

    When given a real :class:`~repro.obs.metrics.MetricsRegistry`, the run
    loop records events executed, queue depth, and a callback wall-clock
    latency histogram. With the default :data:`NOOP_REGISTRY` the loop is
    byte-for-byte the uninstrumented hot path (guarded by one attribute
    check made before the loop starts, not per event).
    """

    def __init__(
        self,
        start_time: float = 0.0,
        metrics: MetricsRegistry = NOOP_REGISTRY,
    ) -> None:
        self._now = start_time
        self._seq = 0
        self._queue: List[Tuple[float, int, Callable[[], Any]]] = []
        self._events_processed = 0
        self.metrics = metrics
        self._m_events = metrics.counter("sim_events_total")
        self._m_queue_depth = metrics.gauge("sim_queue_depth")
        self._m_callback = metrics.histogram("sim_callback_seconds")

    @property
    def now(self) -> float:
        """The current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total events executed so far (a cheap progress/scale metric)."""
        return self._events_processed

    def schedule_at(self, when: float, callback: Callable[[], Any]) -> None:
        """Run ``callback`` at absolute time ``when``.

        Raises:
            ValueError: if ``when`` is in the simulated past.
        """
        if when < self._now:
            raise ValueError(
                f"cannot schedule at {when:.6f}; clock is already at {self._now:.6f}"
            )
        heapq.heappush(self._queue, (when, self._seq, callback))
        self._seq += 1
        # Keep the gauge current on push as well as in the run loop, so
        # depth observed after a burst of schedules (before run()) is not
        # stale. Unconditional: a NOOP gauge's set() is a no-op method
        # call, which keeps the uninstrumented fast path branch-free.
        self._m_queue_depth.set(len(self._queue))

    def schedule_in(self, delay: float, callback: Callable[[], Any]) -> None:
        """Run ``callback`` after ``delay`` seconds of simulated time.

        Raises:
            ValueError: if ``delay`` is negative.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.schedule_at(self._now + delay, callback)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Drain the event queue.

        Args:
            until: stop once the next event would be later than this time
                (the clock is advanced to ``until``). ``None`` runs to
                exhaustion.
            max_events: safety valve for runaway simulations.

        Returns:
            The number of events executed by this call.
        """
        executed = 0
        instrumented = self.metrics.enabled
        while self._queue:
            when, _, callback = self._queue[0]
            if until is not None and when > until:
                break
            if max_events is not None and executed >= max_events:
                break
            heapq.heappop(self._queue)
            self._now = when
            if instrumented:
                t0 = time.perf_counter()  # flowlint: disable=sim-clock -- telemetry duration, never enters sim state
                callback()
                self._m_callback.observe(time.perf_counter() - t0)  # flowlint: disable=sim-clock -- telemetry duration, never enters sim state
            else:
                callback()
            executed += 1
            self._events_processed += 1
        if instrumented:
            self._m_events.inc(executed)
            self._m_queue_depth.set(len(self._queue))
        if until is not None and self._now < until:
            self._now = until
        return executed

    def peek(self) -> Optional[float]:
        """The time of the next pending event, or None when idle."""
        return self._queue[0][0] if self._queue else None

    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._queue)
