"""The simulated flow-based network: switches, controller, and forwarding.

This module binds a :class:`~repro.netsim.topology.Topology` to OpenFlow
switches and a reactive controller and exposes one host-facing operation:
:meth:`Network.send_flow`. Sending a flow reproduces the control-plane
choreography of the paper's Figure 3:

1. the first packet reaches the ingress switch; a table miss raises a
   ``PacketIn`` that reaches the controller after the control-channel
   latency;
2. the controller services it (response-time model), logs a ``FlowMod`` +
   ``PacketOut``, and the entry is installed after another control-channel
   traversal;
3. the packet resumes toward the next hop, where the same dance repeats —
   so "for a new flow, such reporting is performed by all the switches
   along the path";
4. the flow body streams for its duration, refreshing entry counters and
   idle timeouts at checkpoints;
5. after the soft timeout a sweeper evicts the entry and the switch emits a
   ``FlowRemoved`` carrying total bytes and duration.

Legacy switches forward transparently (latency only, no control traffic),
matching the paper's hybrid-deployment observation that problem
localization granularity degrades across non-OpenFlow segments.

Fault hooks (:meth:`fail_switch`, :meth:`fail_link`, :meth:`shutdown_host`,
:meth:`block_port`, :meth:`migrate_host`, plus controller overload via
:attr:`controller`) are the primitives the :mod:`repro.faults` injectors
drive.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro._compat import DATACLASS_KW
from repro.netsim.engine import Simulator
from repro.netsim.topology import Topology
from repro.obs.metrics import NOOP_REGISTRY, MetricsRegistry
from repro.obs.telemetry import NOOP_TELEMETRY, TelemetryPlane
from repro.netsim.links import Link
from repro.netsim.transport import TransportModel, TransportOutcome
from repro.openflow.controller import Controller, ControllerConfig
from repro.openflow.log import ControllerLog
from repro.openflow.match import FlowKey, Match
from repro.openflow.messages import FlowRemoved, FlowStatsReply, PortStatus
from repro.openflow.switch import OpenFlowSwitch


@dataclass(frozen=True, **DATACLASS_KW)
class FlowRequest:
    """One application-level flow to be carried by the network.

    Attributes:
        key: the 5-tuple identity.
        size_bytes: payload size; drives counters and utilization.
        duration: how long the flow body streams, in seconds.
    """

    key: FlowKey
    size_bytes: int = 1000
    duration: float = 0.01


@dataclass(frozen=True, **DATACLASS_KW)
class FlowResult:
    """The outcome of a delivered (or failed) flow.

    Attributes:
        request: the originating request.
        delivered: whether the head of the flow reached the destination.
        started_at: send time.
        head_arrived_at: when the first packet reached the destination
            (includes controller stalls on the path).
        completed_at: when the full body finished, including
            retransmission delay.
        path: node names traversed, hosts included.
        observed_bytes: byte count as seen by switch counters
            (retransmissions included).
    """

    request: FlowRequest
    delivered: bool
    started_at: float
    head_arrived_at: float
    completed_at: float
    path: Tuple[str, ...]
    observed_bytes: int


@dataclass
class NetworkConfig:
    """Network-wide tunables.

    Attributes:
        control_latency: one-way switch-to-controller channel delay.
        controller: reactive controller parameters.
        n_controllers: number of controller instances; switches are
            partitioned across them round-robin (the Section VI
            distributed-controller deployment). Each instance keeps its
            own capture; :attr:`Network.log` merges them, reproducing the
            FlowVisor-style synchronization the paper describes.
        ecmp: hash flows across all equal-cost shortest paths instead of
            always using the first — exercises the redundant aggregation
            and core layers of multi-rooted trees.
        expiry_sweep: period of the FlowRemoved sweeper, bounding how stale
            an expiry notification can be.
        body_checkpoint: fraction of the idle timeout at which long flows
            refresh their entries (keeps entries alive for the body).
        seed: RNG seed for transport sampling and controller jitter.
    """

    control_latency: float = 0.0005
    controller: ControllerConfig = field(default_factory=ControllerConfig)
    n_controllers: int = 1
    ecmp: bool = False
    expiry_sweep: float = 0.25
    body_checkpoint: float = 0.5
    seed: int = 1


class Network:
    """A flow-based data center network bound to a simulator clock."""

    def __init__(
        self,
        topology: Topology,
        sim: Optional[Simulator] = None,
        config: Optional[NetworkConfig] = None,
        metrics: MetricsRegistry = NOOP_REGISTRY,
        telemetry: TelemetryPlane = NOOP_TELEMETRY,
    ) -> None:
        self.topology = topology
        self.metrics = metrics
        self.telemetry = telemetry
        #: Per-link telemetry instrument bundles, keyed by ``id(link)``
        #: (safe: the topology owns its Link objects for our lifetime).
        self._link_probes: Dict[int, tuple] = {}
        self.sim = sim or Simulator(metrics=metrics)
        self.config = config or NetworkConfig()
        self.rng = random.Random(self.config.seed)
        self.transport = TransportModel()
        self.switches: Dict[str, OpenFlowSwitch] = {
            name: OpenFlowSwitch(name, metrics=metrics, telemetry=telemetry)
            for name in topology.switches()
        }
        n_controllers = max(1, self.config.n_controllers)
        self.controllers = [
            Controller(
                route_fn=self._route,
                config=self.config.controller,
                rng=random.Random(self.config.seed + 1 + i),
                metrics=metrics,
                telemetry=telemetry,
                name=f"c{i}",
            )
            for i in range(n_controllers)
        ]
        self._m_flow_removed = metrics.counter(
            "controller_messages_total", kind="flow_removed"
        )
        self._controller_of: Dict[str, Controller] = {
            dpid: self.controllers[i % n_controllers]
            for i, dpid in enumerate(sorted(self.switches))
        }
        self._dead_hosts: Set[str] = set()
        self._blocked: Set[Tuple[str, int]] = set()
        self._host_of_ip: Dict[str, str] = {
            topology.graph.nodes[h].get("ip", h): h for h in topology.hosts()
        }
        self._route_cache: Dict[Tuple[str, str, int], Optional[List[str]]] = {}
        self._topo_version = 0
        self._sweeper_running = False
        self.flows_sent = 0
        self.flows_delivered = 0
        #: Flight-recorder correlation ids: one per injected flow instance,
        #: stamped onto every control message in that flow's causal chain.
        self._next_corr_id = 1

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------

    @property
    def controller(self) -> Controller:
        """The primary controller (the only one in the default deployment)."""
        return self.controllers[0]

    def controller_for(self, dpid: str) -> Controller:
        """The controller instance managing switch ``dpid``."""
        return self._controller_of.get(dpid, self.controllers[0])

    @property
    def log(self) -> ControllerLog:
        """The (merged) controller capture — FlowDiff's input.

        With a single controller this is its live log; with a distributed
        control plane the per-instance captures are merged on access,
        which is the offline synchronization Section VI calls for.
        """
        if len(self.controllers) == 1:
            return self.controllers[0].log
        merged = ControllerLog()
        for controller in self.controllers:
            for message in controller.log:
                merged.append(message)
        return merged

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self.sim.now

    def host_for_ip(self, ip: str) -> Optional[str]:
        """Resolve a flow endpoint identifier to a topology host node."""
        return self._host_of_ip.get(ip, ip if ip in self.topology.graph else None)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def _dead_nodes(self) -> Set[str]:
        dead = set(self._dead_hosts)
        dead.update(name for name, sw in self.switches.items() if not sw.live)
        return dead

    def _path_between(
        self, src_host: str, dst_host: str, flow: Optional[FlowKey] = None
    ) -> Optional[List[str]]:
        key = (src_host, dst_host, self._topo_version)
        if key not in self._route_cache:
            if self.config.ecmp:
                self._route_cache[key] = self.topology.all_shortest_paths(
                    src_host, dst_host, dead_nodes=self._dead_nodes()
                ) or None
            else:
                path = self.topology.path(
                    src_host, dst_host, dead_nodes=self._dead_nodes()
                )
                self._route_cache[key] = [path] if path else None
        paths = self._route_cache[key]
        if not paths:
            return None
        if len(paths) == 1 or flow is None:
            return paths[0]
        # ECMP: a stable per-flow hash keeps every switch on the chosen
        # path agreeing on the route (zlib.crc32 rather than hash(), which
        # is salted per process and would break run-to-run determinism).
        digest = zlib.crc32(str(flow).encode())
        return paths[digest % len(paths)]

    def _route(self, dpid: str, flow: FlowKey) -> Optional[int]:
        """The controller's routing function: next-hop port for a miss."""
        src_host = self.host_for_ip(flow.src)
        dst_host = self.host_for_ip(flow.dst)
        if src_host is None or dst_host is None:
            return None
        path = self._path_between(src_host, dst_host, flow)
        if path is None or dpid not in path:
            return None
        idx = path.index(dpid)
        if idx + 1 >= len(path):
            return None
        return self.topology.port_to(dpid, path[idx + 1])

    def invalidate_routes(self) -> None:
        """Drop cached paths after any topology or liveness change."""
        self._topo_version += 1

    # ------------------------------------------------------------------
    # Flow forwarding
    # ------------------------------------------------------------------

    def send_flow(
        self,
        request: FlowRequest,
        on_complete: Optional[Callable[[FlowResult], None]] = None,
    ) -> None:
        """Inject a flow at its source host at the current simulation time.

        The flow is forwarded asynchronously through scheduled events;
        ``on_complete`` fires when the body finishes (or immediately, with
        ``delivered=False``, when the flow cannot enter the network).
        """
        self.flows_sent += 1
        started = self.sim.now
        key = request.key
        corr_id = self._next_corr_id
        self._next_corr_id += 1
        src_host = self.host_for_ip(key.src)
        dst_host = self.host_for_ip(key.dst)

        def finish(result: FlowResult) -> None:
            if result.delivered:
                self.flows_delivered += 1
            if on_complete is not None:
                on_complete(result)

        def fail_now() -> None:
            finish(
                FlowResult(
                    request=request,
                    delivered=False,
                    started_at=started,
                    head_arrived_at=started,
                    completed_at=started,
                    path=(),
                    observed_bytes=0,
                )
            )

        if (
            src_host is None
            or dst_host is None
            or src_host in self._dead_hosts
            or dst_host in self._dead_hosts
            or (dst_host, key.dst_port) in self._blocked
            or (src_host, key.src_port) in self._blocked
        ):
            self.sim.schedule_in(0.0, fail_now)
            return

        path = self._path_between(src_host, dst_host, key)
        if path is None:
            self.sim.schedule_in(0.0, fail_now)
            return

        self._forward_head(
            request, list(path), hop_index=1, at=started, on_done=finish, corr_id=corr_id
        )

    def _forward_head(
        self,
        request: FlowRequest,
        path: List[str],
        hop_index: int,
        at: float,
        on_done: Callable[[FlowResult], None],
        corr_id: Optional[int] = None,
    ) -> None:
        """Advance the flow's first packet from node ``hop_index - 1``.

        Each recursion step crosses one link and processes one node. The
        head packet carries a nominal MSS of bytes; the body is accounted
        separately once the head has arrived.
        """
        prev = path[hop_index - 1]
        node = path[hop_index]
        link = self.topology.link(prev, node)
        if not link.up:
            self.sim.schedule_in(
                0.0,
                lambda: on_done(self._failed_result(request, at, path)),
            )
            return
        arrive = at + link.effective_latency(self.sim.now)

        def process() -> None:
            self._process_at_node(request, path, hop_index, on_done, corr_id)

        self.sim.schedule_at(arrive, process)

    def _process_at_node(
        self,
        request: FlowRequest,
        path: List[str],
        hop_index: int,
        on_done: Callable[[FlowResult], None],
        corr_id: Optional[int] = None,
    ) -> None:
        node = path[hop_index]
        now = self.sim.now
        key = request.key

        if hop_index == len(path) - 1:
            self._deliver_body(request, path, head_arrived=now, on_done=on_done)
            return

        if self.topology.is_openflow(node):
            switch = self.switches[node]
            in_port = self.topology.port_to(node, path[hop_index - 1])
            head_bytes = min(request.size_bytes, self.transport.mss)
            out_port, miss = switch.process_packet(
                key, in_port, now, head_bytes, corr_id=corr_id
            )
            if miss is not None:
                if not switch.live:
                    on_done(self._failed_result(request, now, path))
                    return
                reply = self.controller_for(node).handle_miss(
                    miss, arrived_at=now + self.config.control_latency
                )
                if reply.flow_mod is None:
                    # Route unknown (e.g. destination just died): drop.
                    on_done(self._failed_result(request, now, path))
                    return
                applied_at = reply.ready_at + self.config.control_latency

                def install_and_continue() -> None:
                    entry = switch.install(
                        match=reply.flow_mod.match,
                        out_port=reply.flow_mod.out_port,
                        now=self.sim.now,
                        idle_timeout=reply.flow_mod.idle_timeout,
                        hard_timeout=reply.flow_mod.hard_timeout,
                        corr_id=reply.flow_mod.corr_id,
                    )
                    entry.record_match(self.sim.now, head_bytes)
                    self._ensure_sweeper()
                    self._forward_head(
                        request, path, hop_index + 1, self.sim.now, on_done, corr_id
                    )

                self.sim.schedule_at(applied_at, install_and_continue)
                return
            if out_port is None:
                on_done(self._failed_result(request, now, path))
                return
            self._forward_head(request, path, hop_index + 1, now, on_done, corr_id)
        else:
            # Legacy switch: transparent store-and-forward, no control plane.
            self._forward_head(request, path, hop_index + 1, now, on_done, corr_id)

    def _deliver_body(
        self,
        request: FlowRequest,
        path: List[str],
        head_arrived: float,
        on_done: Callable[[FlowResult], None],
    ) -> None:
        """Stream the flow body, apply transport effects, finish the flow."""
        links = [
            self.topology.link(a, b) for a, b in zip(path, path[1:])
        ]
        outcome = self.transport.apply(
            request.size_bytes,
            [lk.loss_rate for lk in links],
            self.rng,
        )
        duration = max(request.duration, 1e-6)
        completed = head_arrived + duration + outcome.extra_delay
        for lk in links:
            lk.record_traffic(head_arrived, outcome.observed_bytes, duration)
        if self.telemetry.enabled:
            self._sample_links(links, head_arrived, outcome)

        body_bytes = max(0, outcome.observed_bytes - self.transport.mss)
        body_packets = max(0, self.transport.packets_for(request.size_bytes) - 1)
        self._schedule_body_accounting(
            request.key, path, head_arrived, completed, body_bytes, body_packets
        )

        result = FlowResult(
            request=request,
            delivered=outcome.delivered,
            started_at=head_arrived,  # refined below
            head_arrived_at=head_arrived,
            completed_at=completed,
            path=tuple(path),
            observed_bytes=outcome.observed_bytes,
        )
        self.sim.schedule_at(completed, lambda: on_done(result))

    def _sample_links(
        self, links: List[Link], at: float, outcome: TransportOutcome
    ) -> None:
        """Record per-link telemetry for one delivered flow body.

        Retransmitted packets are charged to the lossy links in proportion
        to their loss rates — the per-link drop attribution 007-style
        localization votes over. Drops are sampled even when zero so drift
        rules see the quiet baseline, not only fault windows.
        """
        probes = self._link_probes
        retrans = outcome.retransmissions
        total_loss = sum(lk.loss_rate for lk in links) if retrans else 0.0
        nbytes = float(outcome.observed_bytes)
        for lk in links:
            # Instrument bundles are cached per Link object (links live as
            # long as the topology) so the hot path pays no dict-of-tuples
            # lookup or edge-string join per sample.
            probe = probes.get(id(lk))
            if probe is None:
                edge = "--".join(lk.key())
                telemetry = self.telemetry
                probe = probes[id(lk)] = (
                    telemetry.series("link", edge, "utilization"),
                    telemetry.series("link", edge, "queue_depth"),
                    telemetry.series("link", edge, "tx_bytes", counter=True),
                    telemetry.series("link", edge, "drops", counter=True),
                )
            t_util, t_queue, t_tx, t_drops = probe
            util = lk.utilization(at)
            t_util.record(at, util)
            t_queue.record(at, util / (1.0 - util))
            t_tx.record(at, nbytes)
            share = 0.0
            if retrans and total_loss > 0 and lk.loss_rate > 0:
                share = retrans * (lk.loss_rate / total_loss)
                lk.record_drops(share)
            t_drops.record(at, share)

    def _schedule_body_accounting(
        self,
        key: FlowKey,
        path: List[str],
        start: float,
        end: float,
        body_bytes: int,
        body_packets: int,
    ) -> None:
        """Credit body bytes to switch entries at idle-timeout-safe checkpoints.

        Long flows refresh their entries before the soft timeout can fire,
        so a FlowRemoved reports the full transfer exactly once, with a
        duration close to the real flow duration — the property the
        flow-statistics signature depends on.
        """
        idle = self.config.controller.idle_timeout
        step = max(idle * self.config.body_checkpoint, 1e-3)
        per = 1
        t = start + step
        while t < end:
            per += 1
            t += step
        share_bytes = body_bytes // per
        share_packets = max(1, body_packets // per) if body_packets else 0
        switch_nodes = [self.switches[n] for n in path if n in self.switches]

        # Every checkpoint credits the same share, so one closure serves
        # them all (it reads the clock at execution time) — the previous
        # shape allocated two fresh closures per checkpoint, which is
        # measurable churn at millions of flows.
        def credit() -> None:
            now = self.sim.now
            for switch in switch_nodes:
                if not switch.live:
                    continue
                entry = switch.table.lookup(key, now)
                if entry is not None:
                    entry.record_match(now, share_bytes, share_packets)

        t = start + step
        while t < end:
            self.sim.schedule_at(t, credit)
            t += step
        self.sim.schedule_at(end, credit)

    def _failed_result(
        self, request: FlowRequest, at: float, path: List[str]
    ) -> FlowResult:
        return FlowResult(
            request=request,
            delivered=False,
            started_at=at,
            head_arrived_at=at,
            completed_at=at,
            path=tuple(path),
            observed_bytes=0,
        )

    # ------------------------------------------------------------------
    # FlowRemoved sweeper and stats polling
    # ------------------------------------------------------------------

    def _ensure_sweeper(self) -> None:
        if self._sweeper_running:
            return
        self._sweeper_running = True
        self.sim.schedule_in(self.config.expiry_sweep, self._sweep)

    def _sweep(self) -> None:
        now = self.sim.now
        pending = 0
        for switch in self.switches.values():
            for entry, reason in switch.expire(now):
                self.controller_for(switch.dpid).log.append(
                    FlowRemoved(
                        timestamp=now + self.config.control_latency,
                        dpid=switch.dpid,
                        match=entry.match,
                        duration=entry.duration,
                        byte_count=entry.byte_count,
                        packet_count=entry.packet_count,
                        reason=reason,
                        corr_id=entry.corr_id,
                    )
                )
                self._m_flow_removed.inc()
            pending += len(switch.table)
        if pending > 0 or self.sim.pending() > 0:
            self.sim.schedule_in(self.config.expiry_sweep, self._sweep)
        else:
            self._sweeper_running = False

    def enable_stats_polling(self, interval: float, until: float) -> None:
        """Periodically record per-entry counters as FlowStatsReply messages.

        Models the controller "polling flow counters on switches to learn
        utilization" (Section I).
        """

        def poll() -> None:
            now = self.sim.now
            for switch in self.switches.values():
                if not switch.live:
                    continue
                for entry in switch.table:
                    self.controller_for(switch.dpid).log.append(
                        FlowStatsReply(
                            timestamp=now + self.config.control_latency,
                            dpid=switch.dpid,
                            match=entry.match,
                            byte_count=entry.byte_count,
                            packet_count=entry.packet_count,
                            duration=entry.duration,
                            corr_id=entry.corr_id,
                        )
                    )
            if now + interval <= until:
                self.sim.schedule_in(interval, poll)

        self.sim.schedule_in(interval, poll)

    # ------------------------------------------------------------------
    # Proactive / wildcard deployment modes (Section VI)
    # ------------------------------------------------------------------

    def proactive_install_all_pairs(
        self, idle_timeout: float = 0.0, send_flow_removed: bool = False
    ) -> int:
        """Pre-install destination-based rules on every switch.

        With no timeouts and muted FlowRemoved, this reproduces the
        proactive deployment in which FlowDiff loses application visibility
        (Section VI): no misses, hence no PacketIn stream.

        Returns:
            The number of rules installed.
        """
        installed = 0
        now = self.sim.now
        for host in self.topology.hosts():
            for dpid, switch in self.switches.items():
                port = self._route_any_dst(dpid, host)
                if port is None:
                    continue
                switch.install(
                    match=Match.destination(self.topology.graph.nodes[host].get("ip", host)),
                    out_port=port,
                    now=now,
                    idle_timeout=idle_timeout,
                    hard_timeout=0.0,
                    send_flow_removed=send_flow_removed,
                )
                installed += 1
        return installed

    def _route_any_dst(self, dpid: str, dst_host: str) -> Optional[int]:
        path = self.topology.path(dpid, dst_host, dead_nodes=self._dead_nodes())
        if path is None or len(path) < 2:
            return None
        return self.topology.port_to(dpid, path[1])

    # ------------------------------------------------------------------
    # Fault hooks
    # ------------------------------------------------------------------

    def fail_switch(self, name: str) -> None:
        """Take an OpenFlow switch down (its table is lost) and reroute."""
        self.switches[name].fail()
        self.controller_for(name).log.append(
            PortStatus(
                timestamp=self.sim.now + self.config.control_latency,
                dpid=name,
                port=0,
                live=False,
            )
        )
        self.invalidate_routes()

    def recover_switch(self, name: str) -> None:
        """Bring a switch back with an empty table."""
        self.switches[name].recover()
        self.invalidate_routes()

    def fail_link(self, a: str, b: str) -> None:
        """Sever the link between adjacent nodes and reroute."""
        self.topology.link(a, b).fail()
        self.invalidate_routes()

    def recover_link(self, a: str, b: str) -> None:
        """Restore a severed link."""
        self.topology.link(a, b).recover()
        self.invalidate_routes()

    def set_link_loss(self, a: str, b: str, loss_rate: float) -> None:
        """Set per-packet loss on a link (the Figure 9 `tc` fault)."""
        self.topology.link(a, b).loss_rate = loss_rate

    def shutdown_host(self, host: str) -> None:
        """Power a host/VM off: it stops sending and receiving."""
        self._dead_hosts.add(host)
        self.invalidate_routes()

    def boot_host(self, host: str) -> None:
        """Bring a host back online."""
        self._dead_hosts.discard(host)
        self.invalidate_routes()

    def block_port(self, host: str, port: int) -> None:
        """Firewall a (host, port): flows to or from it never enter."""
        self._blocked.add((host, port))

    def unblock_port(self, host: str, port: int) -> None:
        """Remove a firewall rule."""
        self._blocked.discard((host, port))

    def migrate_host(self, host: str, new_switch: str) -> None:
        """Re-home a host onto another switch (the VM-migration effect)."""
        self.topology.move_host(host, new_switch)
        self.invalidate_routes()

    def host_is_up(self, host: str) -> bool:
        """Whether the host is currently powered on."""
        return host not in self._dead_hosts
