"""Discrete-event, flow-level data center network simulator.

This substrate stands in for the paper's NEC lab testbed and 320-server
simulation: it binds programmable switches (:mod:`repro.openflow`) and a
reactive controller to a physical topology, forwards flows hop by hop, and
produces the controller log FlowDiff consumes.

* :mod:`repro.netsim.engine` -- the event queue and clock.
* :mod:`repro.netsim.topology` -- graph model and builders for the paper's
  topologies (lab testbed, 320-server tree, fat-tree).
* :mod:`repro.netsim.links` -- link latency/bandwidth/loss with a simple
  utilization-driven queueing-delay model (congestion).
* :mod:`repro.netsim.transport` -- per-flow loss and retransmission
  effects: byte-count inflation and delay inflation, the mechanics behind
  Figure 9.
* :mod:`repro.netsim.network` -- the network itself: switch/controller
  orchestration, reactive rule installation, timeout-driven FlowRemoved
  emission, and the host-facing ``send_flow`` API.
"""

from repro.netsim.engine import Simulator
from repro.netsim.links import Link, LinkState
from repro.netsim.topology import (
    Topology,
    fat_tree,
    lab_testbed,
    linear_topology,
    paper_tree,
)
from repro.netsim.transport import TransportModel, TransportOutcome
from repro.netsim.network import FlowRequest, FlowResult, Network, NetworkConfig

__all__ = [
    "Simulator",
    "Link",
    "LinkState",
    "Topology",
    "fat_tree",
    "lab_testbed",
    "linear_topology",
    "paper_tree",
    "TransportModel",
    "TransportOutcome",
    "FlowRequest",
    "FlowResult",
    "Network",
    "NetworkConfig",
]
