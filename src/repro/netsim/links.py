"""Link model: propagation latency, capacity, loss, and queueing delay.

Links carry three kinds of state FlowDiff experiments manipulate:

* ``loss_rate`` -- per-packet drop probability, raised by the link-loss
  fault; the transport model converts it into retransmission byte/delay
  inflation (Figure 9).
* utilization -- an exponentially decayed estimate of offered load versus
  capacity, fed by every flow the network routes across the link; the
  queueing-delay model inflates effective latency as utilization approaches
  1, which is how background (iperf-style) traffic perturbs the ISL and DD
  signatures (Table I, problem 7).
* ``up`` -- links can be severed to create network disconnectivity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._compat import DATACLASS_KW


@dataclass(**DATACLASS_KW)
class LinkState:
    """Mutable utilization bookkeeping for one link direction-pair."""

    #: Exponentially decayed bytes/second estimate of offered load.
    offered_rate: float = 0.0
    #: Time of the last utilization update.
    updated_at: float = 0.0
    #: Cumulative bytes carried (retransmissions included), both directions.
    tx_bytes: float = 0.0
    #: Cumulative packets this link's loss dropped (fractional when a
    #: retransmission burst is attributed across several lossy links).
    drops: float = 0.0


@dataclass(**DATACLASS_KW)
class Link:
    """A bidirectional link between two nodes.

    Attributes:
        a: one endpoint node id.
        b: other endpoint node id.
        latency: one-way propagation delay in seconds.
        bandwidth: capacity in bytes per second.
        loss_rate: per-packet drop probability in [0, 1].
        up: live flag; a down link breaks every path through it.
        decay: time constant (seconds) of the utilization estimator.
    """

    a: str
    b: str
    latency: float = 0.0005
    bandwidth: float = 125_000_000.0  # 1 Gbps in bytes/s
    loss_rate: float = 0.0
    up: bool = True
    decay: float = 1.0
    state: LinkState = field(default_factory=LinkState)

    def key(self) -> tuple:
        """Canonical (sorted) endpoint pair identifying the link."""
        return tuple(sorted((self.a, self.b)))

    def record_traffic(self, now: float, nbytes: int, duration: float) -> None:
        """Account a flow of ``nbytes`` spread over ``duration`` seconds.

        The offered-rate estimate decays exponentially between updates, so
        bursts fade and steady background traffic accumulates — enough
        fidelity for congestion to move latency distributions without
        simulating queues packet by packet.
        """
        self._decay_to(now)
        effective_duration = max(duration, 1e-6)
        self.state.offered_rate += nbytes / effective_duration
        self.state.tx_bytes += nbytes

    def record_drops(self, n: float) -> None:
        """Account ``n`` packets dropped by this link's loss process."""
        self.state.drops += n

    def _decay_to(self, now: float) -> None:
        dt = now - self.state.updated_at
        if dt > 0:
            self.state.offered_rate *= pow(2.718281828459045, -dt / self.decay)
            self.state.updated_at = now

    def utilization(self, now: float) -> float:
        """Current load fraction in [0, 1); saturates just below 1."""
        self._decay_to(now)
        if self.bandwidth <= 0:
            return 0.95
        return min(0.95, self.state.offered_rate / self.bandwidth)

    def queue_depth(self, now: float) -> float:
        """M/M/1 mean queue occupancy rho/(1-rho) at the current load.

        The same utilization estimate that inflates
        :meth:`effective_latency`, read out as a depth so telemetry can
        plot table pressure and congestion on the same axes the paper's
        Figure 9 experiments perturb.
        """
        rho = self.utilization(now)
        return rho / (1.0 - rho)

    def effective_latency(self, now: float) -> float:
        """Propagation delay inflated by M/M/1-style queueing.

        ``latency / (1 - utilization)``: negligible when idle, several-fold
        under heavy background traffic. This is what shifts the ISL and DD
        signatures during the congestion experiments.
        """
        return self.latency / (1.0 - self.utilization(now))

    def fail(self) -> None:
        """Sever the link."""
        self.up = False

    def recover(self) -> None:
        """Restore the link."""
        self.up = True
