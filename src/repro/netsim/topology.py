"""Topology model and builders for the paper's experimental networks.

A :class:`Topology` is a graph of hosts, programmable (OpenFlow) switches,
and legacy switches, with a :class:`~repro.netsim.links.Link` per edge and
deterministic per-node port numbering (ports are what ``PacketIn`` /
``FlowMod`` messages carry, and what physical-topology inference
reconstructs).

Builders:

* :func:`lab_testbed` -- the paper's NEC lab: 25 physical servers plus five
  VMs connected through seven OpenFlow switches (two "hardware", five
  "software") and two legacy D-Link switches, with every server pair
  separated by at least one OpenFlow switch (Section V).
* :func:`paper_tree` -- the scalability-study network: 320 servers in racks
  of 20, one ToR per rack, every four ToRs dual-homed to two aggregation
  switches, all eight aggregation switches connected to two cores
  (Section V, "Simulation").
* :func:`fat_tree` -- a standard k-ary fat-tree, for topology-sensitivity
  ablations.
* :func:`linear_topology` -- a minimal chain, for unit tests.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import networkx as nx

from repro.netsim.links import Link

HOST = "host"
SWITCH = "switch"  # OpenFlow-programmable
LEGACY = "legacy"  # traditional, non-programmable


class Topology:
    """A data center topology: typed nodes, links, and port numbering."""

    def __init__(self) -> None:
        self.graph = nx.Graph()
        self._links: Dict[Tuple[str, str], Link] = {}
        self._ports: Dict[str, Dict[str, int]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_host(self, name: str, ip: Optional[str] = None) -> None:
        """Add a server/VM node; ``ip`` defaults to the node name."""
        self.graph.add_node(name, kind=HOST, ip=ip or name)

    def add_switch(self, name: str, programmable: bool = True) -> None:
        """Add a switch node (programmable = OpenFlow, else legacy)."""
        self.graph.add_node(name, kind=SWITCH if programmable else LEGACY)

    def add_link(
        self,
        a: str,
        b: str,
        latency: float = 0.0005,
        bandwidth: float = 125_000_000.0,
        loss_rate: float = 0.0,
    ) -> Link:
        """Connect two existing nodes, assigning the next free port on each.

        Raises:
            KeyError: if either endpoint has not been added.
        """
        for node in (a, b):
            if node not in self.graph:
                raise KeyError(f"unknown node {node!r}")
        link = Link(a=a, b=b, latency=latency, bandwidth=bandwidth, loss_rate=loss_rate)
        self.graph.add_edge(a, b)
        self._links[link.key()] = link
        for node, peer in ((a, b), (b, a)):
            ports = self._ports.setdefault(node, {})
            if peer not in ports:
                ports[peer] = len(ports) + 1
        return link

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def kind(self, node: str) -> str:
        """Return the node kind: ``host``, ``switch``, or ``legacy``."""
        return self.graph.nodes[node]["kind"]

    def is_host(self, node: str) -> bool:
        """True for server/VM nodes."""
        return self.kind(node) == HOST

    def is_openflow(self, node: str) -> bool:
        """True for programmable switches."""
        return self.kind(node) == SWITCH

    def hosts(self) -> List[str]:
        """All host node names, sorted for determinism."""
        return sorted(n for n, d in self.graph.nodes(data=True) if d["kind"] == HOST)

    def switches(self) -> List[str]:
        """All OpenFlow switch names, sorted."""
        return sorted(n for n, d in self.graph.nodes(data=True) if d["kind"] == SWITCH)

    def legacy_switches(self) -> List[str]:
        """All legacy (non-programmable) switch names, sorted."""
        return sorted(n for n, d in self.graph.nodes(data=True) if d["kind"] == LEGACY)

    def link(self, a: str, b: str) -> Link:
        """The link between adjacent nodes ``a`` and ``b``.

        Raises:
            KeyError: if the nodes are not adjacent.
        """
        return self._links[tuple(sorted((a, b)))]

    def links(self) -> List[Link]:
        """All links, in deterministic key order."""
        return [self._links[k] for k in sorted(self._links)]

    def port_to(self, node: str, neighbor: str) -> int:
        """The port number on ``node`` that faces ``neighbor``."""
        return self._ports[node][neighbor]

    def neighbor_at(self, node: str, port: int) -> Optional[str]:
        """The neighbor attached to ``node``'s ``port``, if any."""
        for peer, p in self._ports.get(node, {}).items():
            if p == port:
                return peer
        return None

    def attachment_switch(self, host: str) -> Optional[str]:
        """The first switch (OpenFlow or legacy) adjacent to ``host``."""
        for peer in sorted(self.graph.neighbors(host)):
            if not self.is_host(peer):
                return peer
        return None

    def path(
        self,
        src: str,
        dst: str,
        dead_nodes: Iterable[str] = (),
    ) -> Optional[List[str]]:
        """Shortest live path from ``src`` to ``dst``, or None if severed.

        Honors downed links and dead switches; the controller recomputes
        routes through this, so failing a switch reroutes traffic (visible
        to FlowDiff as a physical-topology change) or, absent an alternate
        path, disconnects the endpoints.
        """
        paths = self.all_shortest_paths(src, dst, dead_nodes)
        return paths[0] if paths else None

    def all_shortest_paths(
        self,
        src: str,
        dst: str,
        dead_nodes: Iterable[str] = (),
        limit: int = 8,
    ) -> List[List[str]]:
        """All equal-cost live paths (up to ``limit``), deterministic order.

        The substrate's ECMP building block: multi-rooted trees (the
        paper's dual aggregation/core layers) offer several equal-cost
        paths, and hashing flows across them is how real fabrics spread
        load. Paths are sorted lexically so path selection is stable.
        """
        dead = set(dead_nodes)
        if src in dead or dst in dead:
            return []

        def usable(a: str, b: str) -> bool:
            if a in dead or b in dead:
                return False
            link = self._links.get(tuple(sorted((a, b))))
            return link is not None and link.up

        live = nx.subgraph_view(self.graph, filter_edge=usable, filter_node=lambda n: n not in dead)
        try:
            paths = []
            for path in nx.all_shortest_paths(live, src, dst):
                paths.append(path)
                if len(paths) >= limit:
                    break
            paths.sort()
            return paths
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            return []

    def move_host(self, host: str, new_switch: str, **link_kwargs) -> None:
        """Re-home a host onto a different switch (VM migration's effect)."""
        for peer in list(self.graph.neighbors(host)):
            self.graph.remove_edge(host, peer)
            self._links.pop(tuple(sorted((host, peer))), None)
        # Port maps keep historical entries; re-adding assigns a fresh port,
        # mirroring how a migrated VM shows up on a new physical port.
        self.add_link(host, new_switch, **link_kwargs)


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------


def linear_topology(
    n_switches: int = 3,
    hosts_per_switch: int = 2,
    latency: float = 0.0005,
) -> Topology:
    """A chain of OpenFlow switches with hosts hanging off each.

    Hosts are named ``h<i>``, switches ``sw<i>``; the minimal fixture used
    throughout the unit tests.
    """
    topo = Topology()
    for i in range(1, n_switches + 1):
        topo.add_switch(f"sw{i}")
        if i > 1:
            topo.add_link(f"sw{i - 1}", f"sw{i}", latency=latency)
    h = 0
    for i in range(1, n_switches + 1):
        for _ in range(hosts_per_switch):
            h += 1
            topo.add_host(f"h{h}")
            topo.add_link(f"h{h}", f"sw{i}", latency=latency / 5)
    return topo


def lab_testbed(latency: float = 0.0005, hybrid: bool = False) -> Topology:
    """The paper's NEC lab data center (Section V, "Lab data center").

    25 physical servers (``S1``..``S25``) plus five VMs (``VM1``..``VM5``),
    seven OpenFlow switches (``ofs1``/``ofs2`` model the hardware NEC
    PF5240s, ``ofs3``..``ofs7`` the software switches) and two legacy
    D-Link switches. Legacy switches attach to OpenFlow edge switches so
    that any server-to-server path crosses at least one OpenFlow switch.

    With ``hybrid=True`` only the two aggregation-level switches stay
    OpenFlow-enabled and every edge switch becomes legacy — the
    incremental deployment of Section VI, "where the aggregation switches
    are OpenFlow-enabled [which is] already in production". Measurement
    granularity coarsens accordingly.
    """
    topo = Topology()
    for i in (1, 2):
        topo.add_switch(f"ofs{i}")
    for i in range(3, 8):
        topo.add_switch(f"ofs{i}", programmable=not hybrid)
    for i in (1, 2):
        topo.add_switch(f"dlink{i}", programmable=False)
    # Two-level core: both hardware switches interconnect and uplink every
    # software edge switch.
    topo.add_link("ofs1", "ofs2", latency=latency)
    for i in range(3, 8):
        topo.add_link(f"ofs{i}", "ofs1", latency=latency)
        topo.add_link(f"ofs{i}", "ofs2", latency=latency)
    topo.add_link("dlink1", "ofs3", latency=latency)
    topo.add_link("dlink2", "ofs5", latency=latency)

    edge_cycle = ["ofs3", "ofs4", "ofs5", "ofs6", "ofs7", "dlink1", "dlink2"]
    for idx in range(1, 26):
        host = f"S{idx}"
        topo.add_host(host)
        topo.add_link(host, edge_cycle[(idx - 1) % len(edge_cycle)], latency=latency / 5)
    for idx in range(1, 6):
        vm = f"VM{idx}"
        topo.add_host(vm)
        topo.add_link(vm, edge_cycle[(idx - 1) % 5], latency=latency / 5)
    return topo


def paper_tree(
    racks: int = 16,
    servers_per_rack: int = 20,
    latency: float = 0.0005,
) -> Topology:
    """The 320-server tree of the scalability study (Section V).

    Each rack of ``servers_per_rack`` servers connects to a ToR switch;
    every four ToRs are dual-homed to two aggregation switches; all
    aggregation switches connect to two core switches.
    """
    topo = Topology()
    topo.add_switch("core1")
    topo.add_switch("core2")
    n_groups = max(1, racks // 4)
    for g in range(n_groups):
        for s in (1, 2):
            agg = f"agg{g + 1}_{s}"
            topo.add_switch(agg)
            topo.add_link(agg, "core1", latency=latency)
            topo.add_link(agg, "core2", latency=latency)
    server = 0
    for r in range(racks):
        tor = f"tor{r + 1}"
        topo.add_switch(tor)
        group = min(r // 4, n_groups - 1)
        topo.add_link(tor, f"agg{group + 1}_1", latency=latency)
        topo.add_link(tor, f"agg{group + 1}_2", latency=latency)
        for _ in range(servers_per_rack):
            server += 1
            host = f"srv{server}"
            topo.add_host(host)
            topo.add_link(host, tor, latency=latency / 5)
    return topo


def fat_tree(k: int = 4, latency: float = 0.0005) -> Topology:
    """A standard k-ary fat-tree (k pods, (k/2)^2 cores, k^3/4 hosts).

    Used by ablation benchmarks to check that signature extraction is not
    tied to the paper's specific tree.

    Raises:
        ValueError: if ``k`` is not a positive even number.
    """
    if k <= 0 or k % 2:
        raise ValueError(f"fat-tree arity must be positive and even, got {k}")
    topo = Topology()
    half = k // 2
    cores = [f"core{i + 1}" for i in range(half * half)]
    for c in cores:
        topo.add_switch(c)
    host_idx = 0
    for pod in range(k):
        aggs = [f"p{pod}_agg{i}" for i in range(half)]
        edges = [f"p{pod}_edge{i}" for i in range(half)]
        for a in aggs + edges:
            topo.add_switch(a)
        for i, agg in enumerate(aggs):
            for j in range(half):
                topo.add_link(agg, cores[i * half + j], latency=latency)
            for edge in edges:
                topo.add_link(agg, edge, latency=latency)
        for edge in edges:
            for _ in range(half):
                host_idx += 1
                host = f"ft_h{host_idx}"
                topo.add_host(host)
                topo.add_link(host, edge, latency=latency / 5)
    return topo
