"""Flow-level transport effects: loss, retransmission, and delay inflation.

The paper's Figure 9 experiment injects 1% packet loss with ``tc`` and
observes two effects in the control-plane measurements:

* the **byte count** of flows traversing the lossy link grows (each lost
  packet is retransmitted, and the switch counters see the extra bytes);
* the **delay** between dependent flows grows (retransmission timeouts
  stall request completion, postponing the server's outgoing flow).

This module reproduces those mechanics at flow granularity: given the loss
probability accumulated along a path, it samples how many of the flow's
packets needed retransmission and converts that into observed-byte and
added-delay figures. It deliberately models timeout-driven recovery (RTO)
rather than fast retransmit, because the request flows in the paper's
three-tier apps are short (a handful of packets), where RTO dominates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class TransportOutcome:
    """What the network observed for one flow after transport effects.

    Attributes:
        delivered: False when the path loss was so severe the flow aborted
            (every packet lost ``max_attempts`` times).
        observed_bytes: bytes counted by switches, including retransmissions.
        extra_delay: completion delay added by retransmission timeouts, in
            seconds.
        retransmissions: number of retransmitted packets.
    """

    delivered: bool
    observed_bytes: int
    extra_delay: float
    retransmissions: int


@dataclass
class TransportModel:
    """Samples retransmission effects for flows crossing lossy paths.

    Attributes:
        rto: retransmission timeout in seconds (TCP's conservative minimum
            RTO of 200 ms by default, matching the scale of the delay shift
            in Figure 9(b)).
        mss: maximum segment size in bytes, used to infer the packet count
            of a flow from its byte size.
        max_attempts: per-packet transmission attempts before the flow is
            declared undeliverable.
    """

    rto: float = 0.2
    mss: int = 1460
    max_attempts: int = 6

    def packets_for(self, nbytes: int) -> int:
        """Number of segments a flow of ``nbytes`` occupies (at least 1)."""
        return max(1, -(-nbytes // self.mss))

    @staticmethod
    def path_loss(loss_rates: Sequence[float]) -> float:
        """Combined per-packet loss probability across path links."""
        survive = 1.0
        for p in loss_rates:
            survive *= 1.0 - min(max(p, 0.0), 1.0)
        return 1.0 - survive

    def apply(
        self,
        nbytes: int,
        loss_rates: Sequence[float],
        rng: random.Random,
    ) -> TransportOutcome:
        """Sample the transport outcome of one flow.

        Each segment is transmitted until it survives the path loss
        probability or ``max_attempts`` is exhausted. Retransmitted bytes
        inflate the observed byte count; each retransmission round adds an
        RTO's worth of delay (rounds overlap across segments only weakly in
        short flows, so delays add — a deliberate, conservative model).
        """
        loss = self.path_loss(loss_rates)
        packets = self.packets_for(nbytes)
        if loss <= 0.0:
            return TransportOutcome(
                delivered=True,
                observed_bytes=nbytes,
                extra_delay=0.0,
                retransmissions=0,
            )
        seg_bytes = nbytes / packets
        retx = 0
        extra_delay = 0.0
        delivered = True
        for _ in range(packets):
            attempts = 1
            while rng.random() < loss:
                attempts += 1
                if attempts > self.max_attempts:
                    delivered = False
                    break
                retx += 1
                # Exponential backoff: 1x, 2x, 4x ... the base RTO.
                extra_delay += self.rto * (2 ** (attempts - 2))
            if not delivered:
                break
        observed = int(round(nbytes + retx * seg_bytes))
        return TransportOutcome(
            delivered=delivered,
            observed_bytes=observed,
            extra_delay=extra_delay,
            retransmissions=retx,
        )
