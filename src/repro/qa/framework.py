"""The flowlint engine: rules, pragmas, per-file dispatch, reporters.

The framework is deliberately small. A :class:`Rule` sees parsed modules
(:class:`ModuleFile` wraps path, source, and a lazily built AST) and
yields :class:`Finding` objects; the :class:`LintEngine` runs every rule,
applies ``# flowlint:`` pragma suppression, and sorts the survivors.
There is no plugin discovery and no configuration file — the rule set is
code (:func:`repro.qa.rules.default_rules`), reviewed like any other
code.

Pragmas come in two forms, both requiring an inline justification after
``--`` (an unjustified pragma is itself a finding)::

    x = time.time()  # flowlint: disable=sim-clock -- telemetry, not sim state
    # flowlint: disable-file=determinism -- fuzz harness, seeded upstream

``disable`` suppresses the named rules on its own line; ``disable-file``
suppresses them for the whole file. Rule names are matched exactly.
"""

from __future__ import annotations

import ast
import io
import json
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

#: Pragma grammar: a comment of ``flowlint: disable=rule-a,rule-b`` with
#: an optional ``-- justification`` tail (its absence is itself a finding).
_PRAGMA_RE = re.compile(
    r"#\s*flowlint:\s*(?P<scope>disable|disable-file)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_-]+(?:\s*,\s*[A-Za-z0-9_-]+)*)"
    r"(?:\s+--\s*(?P<why>\S.*))?"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    message: str

    def sort_key(self) -> Tuple[str, int, str]:
        return (self.path, self.line, self.rule)

    def to_dict(self) -> Dict[str, object]:
        """JSON encoding (the ``--format json`` reporter's unit)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }

    def render(self) -> str:
        """``path:line: [rule] message`` — editor-clickable."""
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass(frozen=True)
class Pragma:
    """One parsed ``# flowlint:`` suppression comment."""

    path: str
    line: int
    file_wide: bool
    rules: Tuple[str, ...]
    justification: Optional[str]


class ModuleFile:
    """One Python source file under analysis.

    The AST is parsed lazily and cached; a syntax error surfaces as a
    ``parse-error`` finding from the engine rather than an exception, so
    one broken file cannot hide findings in the rest of the tree.
    """

    def __init__(self, path: str, source: str, module: str = "") -> None:
        self.path = path
        self.source = source
        #: Dotted module name (``repro.netsim.engine``); inferred from the
        #: path when not given, empty when inference fails.
        self.module = module or _infer_module(path)
        self._tree: Optional[ast.Module] = None
        self._parse_error: Optional[SyntaxError] = None

    @classmethod
    def read(cls, path: str, module: str = "") -> "ModuleFile":
        """Load one file from disk."""
        with open(path, encoding="utf-8") as fh:
            return cls(path, fh.read(), module=module)

    @property
    def tree(self) -> Optional[ast.Module]:
        """The parsed AST, or None when the source does not parse."""
        if self._tree is None and self._parse_error is None:
            try:
                self._tree = ast.parse(self.source, filename=self.path)
            except SyntaxError as exc:
                self._parse_error = exc
        return self._tree

    @property
    def parse_error(self) -> Optional[SyntaxError]:
        """The syntax error hit while parsing, if any."""
        if self._tree is None and self._parse_error is None:
            _ = self.tree
        return self._parse_error

    def in_package(self, packages: Sequence[str]) -> bool:
        """Whether this module lives under any of the dotted ``packages``."""
        for package in packages:
            if self.module == package or self.module.startswith(package + "."):
                return True
        return False

    def pragmas(self) -> List[Pragma]:
        """Every ``# flowlint:`` pragma in the file, in line order.

        Only real comment tokens are scanned — pragma-shaped text inside
        a string or docstring is documentation, not a suppression.
        """
        out: List[Pragma] = []
        reader = io.StringIO(self.source).readline
        try:
            for tok in tokenize.generate_tokens(reader):
                if tok.type != tokenize.COMMENT:
                    continue
                match = _PRAGMA_RE.search(tok.string)
                if match is None:
                    continue
                rules = tuple(
                    r.strip()
                    for r in match.group("rules").split(",")
                    if r.strip()
                )
                out.append(
                    Pragma(
                        path=self.path,
                        line=tok.start[0],
                        file_wide=match.group("scope") == "disable-file",
                        rules=rules,
                        justification=match.group("why"),
                    )
                )
        except (tokenize.TokenError, IndentationError, SyntaxError):
            # Unparseable files surface as parse-error findings instead.
            pass
        return out


def _infer_module(path: str) -> str:
    """Dotted module name from a path containing a ``repro/`` component."""
    parts = os.path.normpath(path).split(os.sep)
    try:
        start = parts.index("repro")
    except ValueError:
        return ""
    dotted = parts[start:]
    if not dotted[-1].endswith(".py"):
        return ""
    dotted[-1] = dotted[-1][: -len(".py")]
    if dotted[-1] == "__init__":
        dotted = dotted[:-1]
    return ".".join(dotted)


class Project:
    """The full set of modules one lint run analyzes."""

    def __init__(self, modules: Sequence[ModuleFile]) -> None:
        self.modules = list(modules)
        self._by_name = {m.module: m for m in self.modules if m.module}

    @classmethod
    def load(cls, roots: Sequence[str]) -> "Project":
        """Collect every ``.py`` file under the given roots (or files)."""
        modules: List[ModuleFile] = []
        for root in roots:
            if os.path.isfile(root):
                modules.append(ModuleFile.read(root))
                continue
            for dirpath, dirnames, filenames in os.walk(root):
                dirnames.sort()
                dirnames[:] = [d for d in dirnames if d != "__pycache__"]
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        modules.append(ModuleFile.read(os.path.join(dirpath, name)))
        return cls(modules)

    def module(self, name: str) -> Optional[ModuleFile]:
        """The module with dotted name ``name``, if loaded."""
        return self._by_name.get(name)


class Rule:
    """Base class of every lint rule.

    Subclasses set :attr:`name`/:attr:`description` and override one (or
    both) of the hooks: :meth:`check_module` runs once per file and is
    where most rules live; :meth:`check_project` runs once per lint pass
    with the whole project, for cross-file invariants (schema manifests,
    class contracts).
    """

    name: str = ""
    description: str = ""

    def check_module(self, module: ModuleFile) -> Iterator[Finding]:
        """Findings for one file (default: none)."""
        return iter(())

    def check_project(self, project: Project) -> Iterator[Finding]:
        """Findings needing the whole project (default: none)."""
        return iter(())


@dataclass
class LintResult:
    """Outcome of one engine run: surviving findings plus pragma stats."""

    findings: List[Finding]
    pragmas: List[Pragma] = field(default_factory=list)
    suppressed: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings


class LintEngine:
    """Runs a rule set over a project and applies pragma suppression."""

    def __init__(self, rules: Sequence[Rule]) -> None:
        names = [rule.name for rule in rules]
        if len(set(names)) != len(names) or "" in names:
            raise ValueError(f"rules must have unique non-empty names: {names}")
        self.rules = list(rules)

    def run(self, project: Project) -> LintResult:
        """Lint every module; returns sorted, pragma-filtered findings."""
        raw: List[Finding] = []
        pragmas: List[Pragma] = []
        file_wide: Dict[str, Set[str]] = {}
        by_line: Dict[Tuple[str, int], Set[str]] = {}

        for module in project.modules:
            if module.tree is None and module.parse_error is not None:
                err = module.parse_error
                raw.append(
                    Finding(
                        rule="parse-error",
                        path=module.path,
                        line=err.lineno or 1,
                        message=f"file does not parse: {err.msg}",
                    )
                )
                continue
            for pragma in module.pragmas():
                pragmas.append(pragma)
                if pragma.justification is None:
                    raw.append(
                        Finding(
                            rule="pragma-justification",
                            path=pragma.path,
                            line=pragma.line,
                            message=(
                                "flowlint pragma needs an inline justification "
                                "(append ' -- <why this line is exempt>')"
                            ),
                        )
                    )
                target = file_wide.setdefault(module.path, set()) if (
                    pragma.file_wide
                ) else by_line.setdefault((module.path, pragma.line), set())
                target.update(pragma.rules)
            for rule in self.rules:
                raw.extend(rule.check_module(module))
        for rule in self.rules:
            raw.extend(rule.check_project(project))

        kept: List[Finding] = []
        suppressed = 0
        for finding in raw:
            if finding.rule in file_wide.get(finding.path, ()):
                suppressed += 1
                continue
            if finding.rule in by_line.get((finding.path, finding.line), ()):
                suppressed += 1
                continue
            kept.append(finding)
        kept.sort(key=Finding.sort_key)
        return LintResult(findings=kept, pragmas=pragmas, suppressed=suppressed)


# ----------------------------------------------------------------------
# Reporters
# ----------------------------------------------------------------------


def render_text(result: LintResult) -> str:
    """Human-readable report: one finding per line plus a summary."""
    lines = [finding.render() for finding in result.findings]
    n = len(result.findings)
    summary = (
        f"{n} finding{'s' if n != 1 else ''}, "
        f"{result.suppressed} suppressed by {len(result.pragmas)} pragma"
        f"{'s' if len(result.pragmas) != 1 else ''}"
    )
    lines.append(summary if n else f"clean: {summary}")
    return "\n".join(lines) + "\n"


def render_json(result: LintResult) -> str:
    """Machine-readable report (the CI artifact format)."""
    payload = {
        "ok": result.ok,
        "findings": [finding.to_dict() for finding in result.findings],
        "suppressed": result.suppressed,
        "pragmas": [
            {
                "path": pragma.path,
                "line": pragma.line,
                "file_wide": pragma.file_wide,
                "rules": list(pragma.rules),
                "justification": pragma.justification,
            }
            for pragma in result.pragmas
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


# ----------------------------------------------------------------------
# Shared AST helpers used by the rules
# ----------------------------------------------------------------------


def import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local names to the dotted things they import.

    ``import time`` -> ``{"time": "time"}``; ``from time import
    perf_counter as pc`` -> ``{"pc": "time.perf_counter"}``. Relative
    imports are skipped (the rules only chase stdlib/absolute targets).
    """
    out: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    out[alias.asname] = alias.name
                else:
                    # ``import os.path`` binds the name ``os``.
                    root = alias.name.split(".")[0]
                    out[root] = root
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                out[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return out


def dotted_call_name(node: ast.Call, aliases: Dict[str, str]) -> Optional[str]:
    """The fully-resolved dotted name a call targets, or None.

    ``pc()`` with ``from time import perf_counter as pc`` resolves to
    ``time.perf_counter``; ``dt.datetime.now()`` with ``import datetime
    as dt`` resolves to ``datetime.datetime.now``. Calls on computed
    receivers (subscripts, call results) return None.
    """
    parts: List[str] = []
    target: ast.expr = node.func
    while isinstance(target, ast.Attribute):
        parts.append(target.attr)
        target = target.value
    if not isinstance(target, ast.Name):
        return None
    root = aliases.get(target.id, target.id)
    parts.append(root)
    return ".".join(reversed(parts))


def iter_calls(tree: ast.Module) -> Iterator[ast.Call]:
    """Every call node in the module."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


def literal_str(node: ast.expr) -> Optional[str]:
    """The value of a string-literal expression, else None."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def findings_sorted(findings: Iterable[Finding]) -> List[Finding]:
    """Stable sort order used by rules that accumulate out of order."""
    return sorted(findings, key=Finding.sort_key)
