"""Serialized-schema extraction and the drift manifest.

Three artifact families leave this codebase as JSON: capture logs
(:mod:`repro.openflow.serialize`), behavior models
(:mod:`repro.core.persist` framing the per-signature ``to_dict``
encodings), and task libraries (:mod:`repro.core.tasks.serialize`). A
field added or renamed in any of them silently corrupts downstream diffs
against previously written artifacts — unless the format version is
bumped so old readers refuse loudly.

This module extracts each family's *serialized field set* straight from
the AST of its encoder functions (dict-literal keys, ``.update(kw=...)``
keywords, ``out["key"] =`` assignments) and compares it against the
checked-in manifest ``repro/qa/schemas.json``, which is keyed by the
family's ``FORMAT_VERSION``. The ``schema-drift`` rule fails when fields
change without a version bump; ``repro lint --update-schemas``
regenerates the manifest once the version *has* been bumped.
"""

from __future__ import annotations

import ast
import json
import os
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Set, Tuple

from repro.qa.framework import Finding, ModuleFile, Project, Rule

#: Where the checked-in manifest lives (next to this module).
DEFAULT_MANIFEST_PATH = os.path.join(os.path.dirname(__file__), "schemas.json")


@dataclass(frozen=True)
class SchemaSource:
    """One serialized-artifact family: encoder functions plus a version.

    Attributes:
        name: manifest key.
        version_module: dotted module whose ``FORMAT_VERSION`` keys the
            schema.
        functions: per module, the encoder functions whose emitted field
            names form the schema. Methods are named ``Class.method``.
    """

    name: str
    version_module: str
    functions: Tuple[Tuple[str, Tuple[str, ...]], ...]


#: The families under drift protection. Adding a new serializer to the
#: codebase means adding it here (and to the manifest via
#: ``--update-schemas``) — the self-check test keeps this list honest.
SCHEMA_SOURCES: Tuple[SchemaSource, ...] = (
    SchemaSource(
        name="capture",
        version_module="repro.openflow.serialize",
        functions=(
            (
                "repro.openflow.serialize",
                ("message_to_json", "_flow_to_json", "_match_to_json"),
            ),
        ),
    ),
    SchemaSource(
        name="model",
        version_module="repro.core.persist",
        functions=(
            ("repro.core.persist", ("model_to_dict",)),
            (
                "repro.core.signatures.application",
                ("ApplicationSignature.to_dict",),
            ),
            (
                "repro.core.signatures.connectivity",
                ("ConnectivityGraph.to_dict",),
            ),
            ("repro.core.signatures.flowstats", ("FlowStats.to_dict",)),
            (
                "repro.core.signatures.interaction",
                ("ComponentInteraction.to_dict",),
            ),
            ("repro.core.signatures.delay", ("DelayDistribution.to_dict",)),
            (
                "repro.core.signatures.correlation",
                ("PartialCorrelation.to_dict",),
            ),
            (
                "repro.core.signatures.infrastructure",
                (
                    "PhysicalTopology.to_dict",
                    "InterSwitchLatency.to_dict",
                    "ControllerResponseTime.to_dict",
                    "InfrastructureSignature.to_dict",
                ),
            ),
        ),
    ),
    SchemaSource(
        name="tasks",
        version_module="repro.core.tasks.serialize",
        functions=(
            (
                "repro.core.tasks.serialize",
                ("library_to_dict", "automaton_to_dict", "_label_to_json"),
            ),
        ),
    ),
)


class SchemaExtractionError(ValueError):
    """A schema source could not be located in the project under lint."""


def _find_function(
    tree: ast.Module, qualname: str
) -> Optional[ast.FunctionDef]:
    """Locate a top-level function or a ``Class.method`` in a module AST."""
    if "." in qualname:
        cls_name, method = qualname.split(".", 1)
        for node in tree.body:
            if isinstance(node, ast.ClassDef) and node.name == cls_name:
                for item in node.body:
                    if (
                        isinstance(item, ast.FunctionDef)
                        and item.name == method
                    ):
                        return item
        return None
    for node in tree.body:
        if isinstance(node, ast.FunctionDef) and node.name == qualname:
            return node
    return None


def _emitted_fields(fn: ast.FunctionDef) -> Set[str]:
    """String keys the function emits into its JSON payload.

    Three emission idioms are recognized — dict-literal keys,
    ``obj.update(key=...)`` keywords, and ``obj["key"] = ...``
    assignments — which covers every serializer in the tree (and is the
    idiom set new serializers must stick to for drift protection to see
    them).
    """
    fields: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    fields.add(key.value)
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "update":
                for kw in node.keywords:
                    if kw.arg is not None:
                        fields.add(kw.arg)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.slice, ast.Constant)
                    and isinstance(target.slice.value, str)
                ):
                    fields.add(target.slice.value)
    return fields


def _format_version(module: ModuleFile) -> Optional[Tuple[int, int]]:
    """The module-level ``FORMAT_VERSION`` value and its line, if present."""
    if module.tree is None:
        return None
    for node in module.tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "FORMAT_VERSION":
                    if isinstance(node.value, ast.Constant) and isinstance(
                        node.value.value, int
                    ):
                        return (node.value.value, node.lineno)
    return None


def _source_in_project(project: Project, source: SchemaSource) -> bool:
    """Whether any module of this source is loaded (partial-lint guard)."""
    if project.module(source.version_module) is not None:
        return True
    return any(
        project.module(module_name) is not None
        for module_name, _ in source.functions
    )


def _extract_source(
    project: Project, source: SchemaSource
) -> Dict[str, object]:
    """One source's ``{"version": int, "fields": [...]}``.

    Raises:
        SchemaExtractionError: when a source module/function is missing
            from the project or lacks ``FORMAT_VERSION`` — the sources
            list is then out of sync with the code, which is itself a
            finding for the drift rule.
    """
    fields: Set[str] = set()
    for module_name, qualnames in source.functions:
        module = project.module(module_name)
        if module is None or module.tree is None:
            raise SchemaExtractionError(
                f"schema source module {module_name!r} is not in the "
                f"linted project"
            )
        for qualname in qualnames:
            fn = _find_function(module.tree, qualname)
            if fn is None:
                raise SchemaExtractionError(
                    f"schema source {module_name}.{qualname} not found"
                )
            fields |= _emitted_fields(fn)
    version_module = project.module(source.version_module)
    if version_module is None:
        raise SchemaExtractionError(
            f"version module {source.version_module!r} is not in the "
            f"linted project"
        )
    version = _format_version(version_module)
    if version is None:
        raise SchemaExtractionError(
            f"{source.version_module} has no integer FORMAT_VERSION"
        )
    return {"version": version[0], "fields": sorted(fields)}


def extract_schemas(project: Project) -> Dict[str, Dict[str, object]]:
    """Extract every schema source's field set and version from a project.

    Returns:
        ``{name: {"version": int, "fields": [sorted str, ...]}}``.

    Raises:
        SchemaExtractionError: when a source module/function is missing
            from the project or lacks ``FORMAT_VERSION``.
    """
    return {
        source.name: _extract_source(project, source)
        for source in SCHEMA_SOURCES
    }


def load_manifest(path: str) -> Dict[str, Dict[str, object]]:
    """Read the checked-in manifest; empty when the file does not exist."""
    if not os.path.exists(path):
        return {}
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    schemas = data.get("schemas", {})
    if not isinstance(schemas, dict):
        raise ValueError(f"{path}: manifest 'schemas' must be an object")
    return schemas


def update_manifest(
    project: Project, path: Optional[str] = None
) -> Dict[str, Dict[str, object]]:
    """Regenerate the manifest from the project (``--update-schemas``)."""
    path = path or DEFAULT_MANIFEST_PATH
    schemas = extract_schemas(project)
    payload = {
        "_comment": (
            "Serialized-schema manifest checked by the schema-drift lint "
            "rule. Regenerate with `repro lint --update-schemas` AFTER "
            "bumping the owning FORMAT_VERSION."
        ),
        "schemas": schemas,
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return schemas


class SchemaDriftRule(Rule):
    """Serialized fields must not change without a FORMAT_VERSION bump.

    Compares the field sets extracted from the encoder ASTs against the
    checked-in manifest. Any difference while the version is unchanged is
    the drift this rule exists to catch; a version change alone flags the
    manifest as stale (regenerate it — that is the explicit second step
    that makes the bump deliberate).
    """

    name = "schema-drift"
    description = "serialized field changes require a FORMAT_VERSION bump"

    def __init__(self, manifest_path: Optional[str] = None) -> None:
        self.manifest_path = manifest_path or DEFAULT_MANIFEST_PATH

    def check_project(self, project: Project) -> Iterator[Finding]:
        # Partial lints (``repro lint some/dir``) skip sources whose
        # modules are entirely out of scope; a source with *some* modules
        # loaded but not all is still an extraction error below.
        sources = [
            source
            for source in SCHEMA_SOURCES
            if _source_in_project(project, source)
        ]
        if not sources:
            return
        current: Dict[str, Dict[str, object]] = {}
        failed = False
        for source in sources:
            try:
                current[source.name] = _extract_source(project, source)
            except SchemaExtractionError as exc:
                failed = True
                anchor = self._anchor(project, source)
                yield Finding(
                    rule=self.name,
                    path=anchor[0],
                    line=anchor[1],
                    message=str(exc),
                )
        if failed:
            return
        try:
            manifest = load_manifest(self.manifest_path)
        except (ValueError, json.JSONDecodeError) as exc:
            yield Finding(
                rule=self.name,
                path=self.manifest_path,
                line=1,
                message=f"unreadable schema manifest: {exc}",
            )
            return
        if not manifest:
            yield Finding(
                rule=self.name,
                path=self.manifest_path,
                line=1,
                message=(
                    "schema manifest is missing; run "
                    "`repro lint --update-schemas` to create it"
                ),
            )
            return

        for source in sources:
            got = current[source.name]
            anchor = self._anchor(project, source)
            want = manifest.get(source.name)
            if want is None:
                yield Finding(
                    rule=self.name,
                    path=anchor[0],
                    line=anchor[1],
                    message=(
                        f"schema {source.name!r} is not in the manifest; run "
                        f"`repro lint --update-schemas`"
                    ),
                )
                continue
            same_fields = sorted(got["fields"]) == sorted(want.get("fields", []))  # type: ignore[arg-type]
            same_version = got["version"] == want.get("version")
            if same_fields and same_version:
                continue
            if not same_fields and same_version:
                added = sorted(set(got["fields"]) - set(want.get("fields", [])))  # type: ignore[arg-type]
                removed = sorted(set(want.get("fields", [])) - set(got["fields"]))  # type: ignore[arg-type]
                detail = "; ".join(
                    part
                    for part in (
                        f"added: {', '.join(added)}" if added else "",
                        f"removed: {', '.join(removed)}" if removed else "",
                    )
                    if part
                )
                yield Finding(
                    rule=self.name,
                    path=anchor[0],
                    line=anchor[1],
                    message=(
                        f"serialized fields of schema {source.name!r} changed "
                        f"without a FORMAT_VERSION bump ({detail}); bump "
                        f"FORMAT_VERSION in {source.version_module} and run "
                        f"`repro lint --update-schemas`"
                    ),
                )
            else:
                yield Finding(
                    rule=self.name,
                    path=anchor[0],
                    line=anchor[1],
                    message=(
                        f"manifest for schema {source.name!r} is stale "
                        f"(version {want.get('version')} -> {got['version']}"
                        f"{'' if same_fields else ', fields changed'}); run "
                        f"`repro lint --update-schemas`"
                    ),
                )
        for name in sorted(set(manifest) - {s.name for s in SCHEMA_SOURCES}):
            yield Finding(
                rule=self.name,
                path=self.manifest_path,
                line=1,
                message=(
                    f"manifest schema {name!r} has no source; run "
                    f"`repro lint --update-schemas`"
                ),
            )

    def _anchor(
        self, project: Project, source: Optional[SchemaSource]
    ) -> Tuple[str, int]:
        """Best file/line to attach a finding to: the FORMAT_VERSION line."""
        if source is not None:
            module = project.module(source.version_module)
            if module is not None:
                version = _format_version(module)
                return (module.path, version[1] if version else 1)
        return (self.manifest_path, 1)
