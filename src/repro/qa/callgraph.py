"""Project-wide call graph with thread-entrypoint discovery and coloring.

The concurrency rules (:mod:`repro.qa.concurrency`) need one fact the
per-file rules never had: *which thread runs this code*. This module
builds that fact table in one pass over a :class:`~repro.qa.framework.Project`:

* an interprocedural call graph — class-hierarchy-aware method
  resolution driven by annotation-based type inference (``self.x``
  attribute types, parameter/return annotations, container element
  types, local assignments), so ``self.tenants[name].ingest(batch)``
  produces a real edge to ``TenantPipeline.ingest``;
* thread entrypoints — targets of ``threading.Thread(target=...)``,
  ``do_*`` methods of ``BaseHTTPRequestHandler`` subclasses (including
  class-body aliases like ``do_POST = _refuse_write``), and methods
  registered into a ``self.routes[...]`` table;
* reachability coloring — every function is colored ``main`` /
  ``worker`` / ``http`` (possibly several) by BFS from the entrypoints;
  the main-thread BFS stops at ``__init__`` boundaries so code reachable
  only during object construction is exempted rather than miscolored;
* concurrency facts — attribute accesses (with the receiver's class
  resolved through the type inference and the syntactically held
  locks), lock acquisitions, blocking operations, resolved call sites
  with held-lock context, and thread-creation sites.

Everything here is *facts*; the judgments (is this access a race, is
this blocking call a hazard) live in :mod:`repro.qa.concurrency`.

The analysis is deliberately unsound in the usual lint direction: an
edge or access it cannot resolve is dropped, never guessed, so findings
stay actionable. The one soundness lever that matters — "code reachable
from two thread colors" — errs toward *more* colors (CHA overrides, all
Thread targets) so shared state is not silently missed.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.qa.framework import ModuleFile, Project, import_aliases

#: Reachability colors.
MAIN = "main"
WORKER = "worker"
HTTP = "http"

#: Constructors whose product is a synchronization primitive. Attributes
#: built from these are exempt from lock-discipline (their whole point is
#: cross-thread use) and classified for blocking/thread analysis.
LOCK_CTORS = frozenset({"threading.Lock", "threading.RLock"})
EVENT_CTORS = frozenset({"threading.Event", "threading.Condition"})
QUEUE_CTORS = frozenset(
    {
        "queue.Queue",
        "queue.SimpleQueue",
        "queue.LifoQueue",
        "queue.PriorityQueue",
    }
)
THREAD_CTORS = frozenset({"threading.Thread"})
SYNC_CTORS = (
    LOCK_CTORS
    | EVENT_CTORS
    | QUEUE_CTORS
    | THREAD_CTORS
    | frozenset({"threading.Semaphore", "threading.BoundedSemaphore"})
)

#: Base-class suffixes marking an HTTP handler class: every ``do_*``
#: method of a subclass is an HTTP-thread entrypoint.
HANDLER_BASES = ("BaseHTTPRequestHandler",)

#: Method names treated as in-place mutations of the receiver — a call
#: ``self.ring.append(x)`` is a *write* to ``ring`` for lock-discipline.
MUTATOR_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "extend",
        "extendleft",
        "insert",
        "add",
        "discard",
        "remove",
        "pop",
        "popleft",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "sort",
        "reverse",
        "rotate",
    }
)

#: Functions whose body runs during object construction; accesses inside
#: them happen before the object is published to other threads.
INIT_NAMES = frozenset({"__init__", "__post_init__", "__new__", "__init_subclass__"})

#: Typing heads treated as homogeneous containers (subscript/iteration
#: yields the element type).
_CONTAINER_HEADS = frozenset(
    {
        "List",
        "list",
        "Deque",
        "deque",
        "Set",
        "set",
        "FrozenSet",
        "frozenset",
        "Sequence",
        "MutableSequence",
        "Iterable",
        "Iterator",
        "Collection",
    }
)
_MAPPING_HEADS = frozenset(
    {"Dict", "dict", "Mapping", "MutableMapping", "DefaultDict", "OrderedDict"}
)


@dataclass(frozen=True)
class TypeRef:
    """A resolved static type: a project class, a container, or a tuple.

    ``kind`` is ``"class"`` (``cls`` holds the class qualname, or None
    for a known-but-unresolved type), ``"container"`` (``items[0]`` is
    the element type), or ``"tuple"`` (``items`` are the member types).
    """

    kind: str
    cls: Optional[str] = None
    items: Tuple["TypeRef", ...] = ()

    def elem(self) -> Optional["TypeRef"]:
        """The element type an iteration/subscript yields, if known."""
        if self.kind == "container" and self.items:
            return self.items[0]
        return None


UNKNOWN = TypeRef("class", None)


@dataclass(frozen=True)
class Entrypoint:
    """One place a thread other than main enters project code."""

    qualname: str
    kind: str  # "worker" | "http"
    path: str
    line: int


@dataclass(frozen=True)
class AttrAccess:
    """One read/write of ``<owner>.<attr>`` inside ``func``.

    ``locks`` are the lock ids *syntactically* held at the site; the
    rules add interprocedurally inherited locks on top.
    """

    owner: str
    attr: str
    func: str
    path: str
    line: int
    write: bool
    locks: FrozenSet[str]


@dataclass(frozen=True)
class CallSite:
    """One resolved project-internal call, with held-lock context."""

    caller: str
    callee: str
    path: str
    line: int
    locks: FrozenSet[str]


@dataclass(frozen=True)
class BlockingOp:
    """One potentially blocking operation (sleep, file I/O, queue wait)."""

    func: str
    path: str
    line: int
    what: str
    locks: FrozenSet[str]


@dataclass(frozen=True)
class LockAcquire:
    """One ``with <lock>:`` entry, with the locks already held."""

    func: str
    path: str
    line: int
    lock: str
    held: FrozenSet[str]


@dataclass(frozen=True)
class ThreadCreate:
    """One ``threading.Thread(...)`` construction site.

    ``bound`` records where the thread object lands: ``("attr", name)``
    for ``self.name = Thread(...)``, ``("local", name)`` for a local
    variable, None when the object is not kept.
    """

    func: str
    cls: Optional[str]
    path: str
    line: int
    bound: Optional[Tuple[str, str]]


@dataclass
class FunctionInfo:
    """One function or method in the project."""

    qualname: str
    module: str
    cls: Optional[str]
    name: str
    node: ast.AST
    path: str
    line: int
    decorators: Tuple[str, ...] = ()
    local_joins: Set[str] = field(default_factory=set)


@dataclass
class ClassInfo:
    """One class: hierarchy, methods, and inferred attribute facts."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    path: str
    line: int
    bases_raw: List[str] = field(default_factory=list)
    bases: List[str] = field(default_factory=list)
    methods: Dict[str, str] = field(default_factory=dict)
    properties: Set[str] = field(default_factory=set)
    attr_types: Dict[str, TypeRef] = field(default_factory=dict)
    attr_ctors: Dict[str, str] = field(default_factory=dict)
    attr_assigned: Set[str] = field(default_factory=set)
    guarded_by: Dict[str, str] = field(default_factory=dict)
    join_attrs: Set[str] = field(default_factory=set)
    event_set_attrs: Set[str] = field(default_factory=set)


class CallGraph:
    """The assembled fact table; build one with :meth:`build`."""

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.edges: Dict[str, Set[str]] = {}
        self.callers: Dict[str, Set[str]] = {}
        self.entrypoints: List[Entrypoint] = []
        self.accesses: List[AttrAccess] = []
        self.calls: List[CallSite] = []
        self.blocking: List[BlockingOp] = []
        self.acquires: List[LockAcquire] = []
        self.thread_creates: List[ThreadCreate] = []
        #: Filled by :meth:`_color`.
        self.worker_set: Set[str] = set()
        self.http_set: Set[str] = set()
        self.main_set: Set[str] = set()
        self.construction: Set[str] = set()
        self._reach_cache: Dict[str, FrozenSet[str]] = {}

    # -- public queries --------------------------------------------------

    def color(self, qualname: str) -> FrozenSet[str]:
        """The thread colors of one function (empty = construction-only)."""
        out: Set[str] = set()
        if qualname in self.worker_set:
            out.add(WORKER)
        if qualname in self.http_set:
            out.add(HTTP)
        if qualname in self.main_set:
            out.add(MAIN)
        return frozenset(out)

    def is_exempt(self, qualname: str) -> bool:
        """Construction-phase code: ``__init__`` family, or reachable
        only through a constructor — accesses there happen before the
        object escapes to other threads."""
        info = self.functions.get(qualname)
        if info is not None and info.name in INIT_NAMES:
            return True
        return qualname in self.construction and not self.color(qualname)

    def reachable(self, qualname: str) -> FrozenSet[str]:
        """Every function transitively callable from ``qualname``."""
        cached = self._reach_cache.get(qualname)
        if cached is not None:
            return cached
        seen: Set[str] = set()
        stack = [qualname]
        while stack:
            cur = stack.pop()
            if cur in seen:
                continue
            seen.add(cur)
            stack.extend(self.edges.get(cur, ()))
        out = frozenset(seen)
        self._reach_cache[qualname] = out
        return out

    def mro(self, qualname: str) -> List[ClassInfo]:
        """The class plus its transitive project bases, nearest first."""
        out: List[ClassInfo] = []
        seen: Set[str] = set()
        stack = [qualname]
        while stack:
            cur = stack.pop(0)
            if cur in seen:
                continue
            seen.add(cur)
            info = self.classes.get(cur)
            if info is None:
                continue
            out.append(info)
            stack.extend(info.bases)
        return out

    def attr_owner(self, cls: str, attr: str) -> str:
        """The class in ``cls``'s hierarchy that declares ``attr``."""
        for info in self.mro(cls):
            if (
                attr in info.attr_types
                or attr in info.attr_ctors
                or attr in info.attr_assigned
            ):
                return info.qualname
        return cls

    def attr_type(self, cls: str, attr: str) -> Optional[TypeRef]:
        for info in self.mro(cls):
            ref = info.attr_types.get(attr)
            if ref is not None:
                return ref
        return None

    def attr_ctor(self, cls: str, attr: str) -> Optional[str]:
        for info in self.mro(cls):
            ctor = info.attr_ctors.get(attr)
            if ctor is not None:
                return ctor
        return None

    def guarded_reason(self, cls: str, attr: str) -> Optional[str]:
        """The ``_GUARDED_BY`` justification for ``attr``, if declared."""
        for info in self.mro(cls):
            reason = info.guarded_by.get(attr)
            if reason is not None:
                return reason
        return None

    def resolve_method(self, cls: str, name: str) -> Optional[str]:
        for info in self.mro(cls):
            qual = info.methods.get(name)
            if qual is not None:
                return qual
        return None

    # -- construction ----------------------------------------------------

    @classmethod
    def build(cls, project: Project) -> "CallGraph":
        return _Builder(project).build()


class _Builder:
    def __init__(self, project: Project) -> None:
        self.project = project
        self.graph = CallGraph()
        self._aliases: Dict[str, Dict[str, str]] = {}
        self._module_classes: Dict[str, Dict[str, str]] = {}
        self._module_funcs: Dict[str, Dict[str, str]] = {}
        self._subclasses: Dict[str, Set[str]] = {}
        self._returns_cache: Dict[str, Optional[TypeRef]] = {}
        self._module_roots: Set[str] = set()

    # -- pass 1: index ---------------------------------------------------

    def build(self) -> CallGraph:
        modules = [m for m in self.project.modules if m.tree is not None]
        for module in modules:
            self._index_module(module)
        for module in modules:
            self._resolve_bases(module)
        self._compute_subclasses()
        for module in modules:
            self._collect_attrs(module)
        for module in modules:
            self._scan_module(module)
        self._handler_entrypoints()
        self._color()
        return self.graph

    def _index_module(self, module: ModuleFile) -> None:
        tree = module.tree
        assert tree is not None
        self._aliases[module.module] = import_aliases(tree)
        classes: Dict[str, str] = {}
        funcs: Dict[str, str] = {}
        for node in tree.body:
            if isinstance(node, ast.ClassDef):
                qual = f"{module.module}.{node.name}"
                info = ClassInfo(
                    qualname=qual,
                    module=module.module,
                    name=node.name,
                    node=node,
                    path=module.path,
                    line=node.lineno,
                )
                classes[node.name] = qual
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        fq = f"{qual}.{item.name}"
                        decos = tuple(
                            d.id
                            for d in item.decorator_list
                            if isinstance(d, ast.Name)
                        )
                        info.methods[item.name] = fq
                        if "property" in decos or "cached_property" in decos:
                            info.properties.add(item.name)
                        self.graph.functions[fq] = FunctionInfo(
                            qualname=fq,
                            module=module.module,
                            cls=qual,
                            name=item.name,
                            node=item,
                            path=module.path,
                            line=item.lineno,
                            decorators=decos,
                        )
                    elif isinstance(item, ast.Assign):
                        # ``do_POST = _refuse_write`` — a method alias.
                        if isinstance(item.value, ast.Name):
                            target_fn = item.value.id
                            for tgt in item.targets:
                                if isinstance(tgt, ast.Name):
                                    info.methods.setdefault(
                                        tgt.id, f"{qual}.{target_fn}"
                                    )
                self.graph.classes[qual] = info
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fq = f"{module.module}.{node.name}"
                funcs[node.name] = fq
                self.graph.functions[fq] = FunctionInfo(
                    qualname=fq,
                    module=module.module,
                    cls=None,
                    name=node.name,
                    node=node,
                    path=module.path,
                    line=node.lineno,
                    decorators=tuple(
                        d.id for d in node.decorator_list if isinstance(d, ast.Name)
                    ),
                )
        self._module_classes[module.module] = classes
        self._module_funcs[module.module] = funcs

    # -- pass 2: hierarchy -----------------------------------------------

    def _resolve_dotted(self, module: str, name: str) -> Optional[str]:
        """A bare or dotted name to a project class qualname, or None."""
        local = self._module_classes.get(module, {}).get(name)
        if local is not None:
            return local
        aliases = self._aliases.get(module, {})
        head, _, rest = name.partition(".")
        dotted = aliases.get(head, head) + ("." + rest if rest else "")
        if dotted in self.graph.classes:
            return dotted
        return None

    def _resolve_bases(self, module: ModuleFile) -> None:
        for info in self.graph.classes.values():
            if info.module != module.module:
                continue
            for base in info.node.bases:
                raw = _dotted_expr(base)
                if raw is None:
                    continue
                info.bases_raw.append(raw)
                resolved = self._resolve_dotted(info.module, raw)
                if resolved is not None:
                    info.bases.append(resolved)

    def _compute_subclasses(self) -> None:
        direct: Dict[str, Set[str]] = {}
        for info in self.graph.classes.values():
            for base in info.bases:
                direct.setdefault(base, set()).add(info.qualname)
        for qual in self.graph.classes:
            seen: Set[str] = set()
            stack = list(direct.get(qual, ()))
            while stack:
                cur = stack.pop()
                if cur in seen:
                    continue
                seen.add(cur)
                stack.extend(direct.get(cur, ()))
            self._subclasses[qual] = seen

    def _is_handler_class(self, info: ClassInfo) -> bool:
        seen: Set[str] = set()
        stack = [info.qualname]
        while stack:
            cur = stack.pop()
            if cur in seen:
                continue
            seen.add(cur)
            cur_info = self.graph.classes.get(cur)
            if cur_info is None:
                continue
            for raw in cur_info.bases_raw:
                tail = raw.rsplit(".", 1)[-1]
                if tail in HANDLER_BASES:
                    return True
            stack.extend(cur_info.bases)
        return False

    # -- pass 3: attribute facts ----------------------------------------

    def _parse_annotation(self, node: ast.expr, module: str) -> Optional[TypeRef]:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                inner = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return None
            return self._parse_annotation(inner, module)
        if isinstance(node, (ast.Name, ast.Attribute)):
            raw = _dotted_expr(node)
            if raw is None:
                return None
            resolved = self._resolve_dotted(module, raw)
            if resolved is not None:
                return TypeRef("class", resolved)
            return None
        if isinstance(node, ast.Subscript):
            head = _dotted_expr(node.value)
            if head is None:
                return None
            head = head.rsplit(".", 1)[-1]
            slc: ast.expr = node.slice
            if head in ("Optional",):
                return self._parse_annotation(slc, module)
            if head in ("Union",):
                if isinstance(slc, ast.Tuple):
                    for elt in slc.elts:
                        parsed = self._parse_annotation(elt, module)
                        if parsed is not None:
                            return parsed
                return self._parse_annotation(slc, module)
            if head in _MAPPING_HEADS:
                if isinstance(slc, ast.Tuple) and len(slc.elts) == 2:
                    value = self._parse_annotation(slc.elts[1], module)
                    return TypeRef("container", None, (value or UNKNOWN,))
                return None
            if head in _CONTAINER_HEADS:
                elt_node = slc.elts[0] if isinstance(slc, ast.Tuple) else slc
                elem = self._parse_annotation(elt_node, module)
                return TypeRef("container", None, (elem or UNKNOWN,))
            if head in ("Tuple", "tuple"):
                if isinstance(slc, ast.Tuple):
                    items = tuple(
                        self._parse_annotation(e, module) or UNKNOWN
                        for e in slc.elts
                        if not (isinstance(e, ast.Constant) and e.value is Ellipsis)
                    )
                    return TypeRef("tuple", None, items)
                elem = self._parse_annotation(slc, module)
                return TypeRef("container", None, (elem or UNKNOWN,))
            return None
        return None

    def _returns(self, qualname: str) -> Optional[TypeRef]:
        if qualname in self._returns_cache:
            return self._returns_cache[qualname]
        info = self.graph.functions.get(qualname)
        out: Optional[TypeRef] = None
        if info is not None:
            node = info.node
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.returns is not None
            ):
                out = self._parse_annotation(node.returns, info.module)
        self._returns_cache[qualname] = out
        return out

    def _param_types(self, info: FunctionInfo) -> Dict[str, TypeRef]:
        node = info.node
        env: Dict[str, TypeRef] = {}
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return env
        args = list(node.args.posonlyargs) + list(node.args.args) + list(
            node.args.kwonlyargs
        )
        for arg in args:
            if arg.annotation is not None:
                parsed = self._parse_annotation(arg.annotation, info.module)
                if parsed is not None:
                    env[arg.arg] = parsed
        if info.cls is not None and args and args[0].arg == "self":
            env["self"] = TypeRef("class", info.cls)
        return env

    def _collect_attrs(self, module: ModuleFile) -> None:
        for info in self.graph.classes.values():
            if info.module != module.module:
                continue
            self._collect_class_attrs(info)

    def _collect_class_attrs(self, info: ClassInfo) -> None:
        module = info.module
        for item in info.node.body:
            if isinstance(item, ast.AnnAssign) and isinstance(
                item.target, ast.Name
            ):
                parsed = self._parse_annotation(item.annotation, module)
                if parsed is not None:
                    info.attr_types[item.target.id] = parsed
                info.attr_assigned.add(item.target.id)
            elif isinstance(item, ast.Assign):
                for tgt in item.targets:
                    if isinstance(tgt, ast.Name) and tgt.id == "_GUARDED_BY":
                        info.guarded_by.update(_parse_guarded_by(item.value))

        # ``__init__`` first so later methods see the attrs it declares.
        method_names = sorted(
            info.methods, key=lambda n: (n not in INIT_NAMES, n)
        )
        for name in method_names:
            fn = self.graph.functions.get(info.methods[name])
            if fn is None or fn.cls != info.qualname:
                continue
            params = self._param_types(fn)
            for node in ast.walk(fn.node):
                if isinstance(node, ast.AnnAssign):
                    tgt = node.target
                    if (
                        isinstance(tgt, ast.Attribute)
                        and isinstance(tgt.value, ast.Name)
                        and tgt.value.id == "self"
                    ):
                        info.attr_assigned.add(tgt.attr)
                        parsed = self._parse_annotation(node.annotation, module)
                        if parsed is not None:
                            info.attr_types.setdefault(tgt.attr, parsed)
                elif isinstance(node, ast.Assign):
                    for tgt in node.targets:
                        if (
                            isinstance(tgt, ast.Attribute)
                            and isinstance(tgt.value, ast.Name)
                            and tgt.value.id == "self"
                        ):
                            info.attr_assigned.add(tgt.attr)
                            self._infer_attr_value(
                                info, tgt.attr, node.value, params
                            )
                elif isinstance(node, ast.AugAssign):
                    tgt = node.target
                    if (
                        isinstance(tgt, ast.Attribute)
                        and isinstance(tgt.value, ast.Name)
                        and tgt.value.id == "self"
                    ):
                        info.attr_assigned.add(tgt.attr)

    def _infer_attr_value(
        self,
        info: ClassInfo,
        attr: str,
        value: ast.expr,
        params: Dict[str, TypeRef],
    ) -> None:
        if isinstance(value, ast.IfExp):
            self._infer_attr_value(info, attr, value.body, params)
            if attr not in info.attr_types and attr not in info.attr_ctors:
                self._infer_attr_value(info, attr, value.orelse, params)
            return
        if isinstance(value, ast.Name):
            ref = params.get(value.id)
            if ref is not None:
                info.attr_types.setdefault(attr, ref)
            return
        if isinstance(value, ast.Call):
            raw = _dotted_expr(value.func)
            if raw is not None:
                aliases = self._aliases.get(info.module, {})
                head, _, rest = raw.partition(".")
                dotted = aliases.get(head, head) + ("." + rest if rest else "")
                info.attr_ctors.setdefault(attr, dotted)
                resolved = self._resolve_dotted(info.module, raw)
                if resolved is not None:
                    info.attr_types.setdefault(attr, TypeRef("class", resolved))
                    return
            # ``self.metrics.gauge(...)`` — type via the method's return
            # annotation when the receiver chain resolves.
            if isinstance(value.func, ast.Attribute):
                recv = self._cheap_chain_type(info, value.func.value, params)
                if recv is not None and recv.kind == "class" and recv.cls:
                    target = self.graph.resolve_method(recv.cls, value.func.attr)
                    if target is not None:
                        ret = self._returns(target)
                        if ret is not None:
                            info.attr_types.setdefault(attr, ret)

    def _cheap_chain_type(
        self, info: ClassInfo, node: ast.expr, params: Dict[str, TypeRef]
    ) -> Optional[TypeRef]:
        """``self`` / ``self.x`` / param chains during attr collection."""
        if isinstance(node, ast.Name):
            return params.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self._cheap_chain_type(info, node.value, params)
            if base is not None and base.kind == "class" and base.cls:
                return self.graph.attr_type(base.cls, node.attr)
        return None

    # -- pass 4: function scan -------------------------------------------

    def _scan_module(self, module: ModuleFile) -> None:
        for fn in list(self.graph.functions.values()):
            if fn.module == module.module:
                _FnScanner(self, fn).scan()
        self._module_level_roots(module)

    def _module_level_roots(self, module: ModuleFile) -> None:
        tree = module.tree
        assert tree is not None
        funcs = self._module_funcs.get(module.module, {})
        for node in tree.body:
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            for call in ast.walk(node):
                if isinstance(call, ast.Call) and isinstance(call.func, ast.Name):
                    qual = funcs.get(call.func.id)
                    if qual is not None:
                        self._module_roots.add(qual)

    def _handler_entrypoints(self) -> None:
        for info in self.graph.classes.values():
            if not self._is_handler_class(info):
                continue
            for name, qual in info.methods.items():
                if name.startswith("do_") and qual in self.graph.functions:
                    fn = self.graph.functions[qual]
                    self.graph.entrypoints.append(
                        Entrypoint(qual, "http", fn.path, fn.line)
                    )

    # -- pass 5: coloring ------------------------------------------------

    def _closure(self, roots: Sequence[str], barrier: bool) -> Set[str]:
        seen: Set[str] = set()
        stack = [r for r in roots if r in self.graph.functions]
        while stack:
            cur = stack.pop()
            if cur in seen:
                continue
            seen.add(cur)
            info = self.graph.functions[cur]
            if barrier and info.name in INIT_NAMES:
                continue
            stack.extend(
                t for t in self.graph.edges.get(cur, ()) if t in self.graph.functions
            )
        return seen

    def _color(self) -> None:
        graph = self.graph
        for caller, callees in graph.edges.items():
            for callee in callees:
                graph.callers.setdefault(callee, set()).add(caller)
        worker_roots = [e.qualname for e in graph.entrypoints if e.kind == "worker"]
        http_roots = [e.qualname for e in graph.entrypoints if e.kind == "http"]
        graph.worker_set = self._closure(worker_roots, barrier=False)
        graph.http_set = self._closure(http_roots, barrier=False)
        entry_names = set(worker_roots) | set(http_roots)
        main_roots = set(self._module_roots)
        for qual in graph.functions:
            if qual in entry_names:
                continue
            if not graph.callers.get(qual):
                main_roots.add(qual)
        graph.main_set = self._closure(sorted(main_roots), barrier=True)
        init_fns = [
            q for q, f in graph.functions.items() if f.name in INIT_NAMES
        ]
        graph.construction = self._closure(init_fns, barrier=False)


class _FnScanner:
    """One function's body: edges, accesses, locks, blocking, threads."""

    def __init__(self, builder: _Builder, fn: FunctionInfo) -> None:
        self.b = builder
        self.g = builder.graph
        self.fn = fn
        self.env: Dict[str, TypeRef] = builder._param_types(fn)
        self.held: List[str] = []
        self.local_threads: Set[str] = set()

    def scan(self) -> None:
        node = self.fn.node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._visit_body(node.body)

    # -- helpers ---------------------------------------------------------

    def _locks(self) -> FrozenSet[str]:
        return frozenset(self.held)

    def _type_of(self, node: ast.expr) -> Optional[TypeRef]:
        if isinstance(node, ast.Name):
            return self.env.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self._type_of(node.value)
            if base is not None and base.kind == "class" and base.cls:
                ref = self.g.attr_type(base.cls, node.attr)
                if ref is not None:
                    return ref
                method = self.g.resolve_method(base.cls, node.attr)
                if method is not None:
                    owner = self.g.functions.get(method)
                    cls_info = (
                        self.g.classes.get(owner.cls)
                        if owner is not None and owner.cls
                        else None
                    )
                    if cls_info is not None and node.attr in cls_info.properties:
                        return self.b._returns(method)
            return None
        if isinstance(node, ast.Subscript):
            base = self._type_of(node.value)
            if base is not None:
                return base.elem()
            return None
        if isinstance(node, ast.Call):
            return self._call_type(node)
        if isinstance(node, ast.IfExp):
            return self._type_of(node.body) or self._type_of(node.orelse)
        if isinstance(node, ast.Await):
            return self._type_of(node.value)
        return None

    def _call_type(self, node: ast.Call) -> Optional[TypeRef]:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in ("list", "sorted", "iter", "reversed", "tuple"):
                if node.args:
                    return self._type_of(node.args[0])
                return None
            if func.id == "next" and node.args:
                inner = self._type_of(node.args[0])
                return inner.elem() if inner is not None else None
            if func.id == "dict" and node.args:
                inner = self._type_of(node.args[0])
                elem = inner.elem() if inner is not None else None
                if elem is not None and elem.kind == "tuple" and len(elem.items) == 2:
                    return TypeRef("container", None, (elem.items[1],))
                return None
            resolved = self.b._resolve_dotted(self.fn.module, func.id)
            if resolved is not None:
                return TypeRef("class", resolved)
            local = self.b._module_funcs.get(self.fn.module, {}).get(func.id)
            if local is not None:
                return self.b._returns(local)
            return None
        if isinstance(func, ast.Attribute):
            recv = self._type_of(func.value)
            if recv is not None and recv.kind == "container":
                if func.attr in ("values", "copy"):
                    return recv
                if func.attr == "get":
                    return recv.elem()
                if func.attr == "items":
                    elem = recv.elem() or UNKNOWN
                    return TypeRef(
                        "container", None, (TypeRef("tuple", None, (UNKNOWN, elem)),)
                    )
                return None
            if recv is not None and recv.kind == "class" and recv.cls:
                method = self.g.resolve_method(recv.cls, func.attr)
                if method is not None:
                    return self.b._returns(method)
                return None
            raw = _dotted_expr(func)
            if raw is not None:
                resolved = self.b._resolve_dotted(self.fn.module, raw)
                if resolved is not None:
                    return TypeRef("class", resolved)
        return None

    def _bind(self, target: ast.expr, ref: Optional[TypeRef]) -> None:
        if isinstance(target, ast.Name):
            if ref is not None:
                self.env[target.id] = ref
            else:
                self.env.pop(target.id, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            items: Sequence[Optional[TypeRef]]
            if ref is not None and ref.kind == "tuple" and len(ref.items) == len(
                target.elts
            ):
                items = list(ref.items)
            else:
                items = [None] * len(target.elts)
            for elt, item in zip(target.elts, items):
                self._bind(elt, item)

    def _record_access(
        self, node: ast.Attribute, write: bool
    ) -> Optional[AttrAccess]:
        base = self._type_of(node.value)
        if base is None or base.kind != "class" or not base.cls:
            return None
        cls = base.cls
        attr = node.attr
        if self.g.resolve_method(cls, attr) is not None:
            # A method reference, not data: record the edge instead.
            self._add_edges([m for m in self._method_targets(cls, attr)])
            return None
        ctor = self.g.attr_ctor(cls, attr)
        if ctor in SYNC_CTORS:
            return None
        owner = self.g.attr_owner(cls, attr)
        access = AttrAccess(
            owner=owner,
            attr=attr,
            func=self.fn.qualname,
            path=self.fn.path,
            line=node.lineno,
            write=write,
            locks=self._locks(),
        )
        self.g.accesses.append(access)
        return access

    def _method_targets(self, cls: str, name: str) -> List[str]:
        out: List[str] = []
        base = self.g.resolve_method(cls, name)
        if base is not None:
            out.append(base)
        for sub in self.b._subclasses.get(cls, ()):
            info = self.g.classes.get(sub)
            if info is not None and name in info.methods:
                out.append(info.methods[name])
        return [q for q in out if q in self.g.functions]

    def _add_edges(self, targets: Sequence[str], line: int = 0) -> None:
        for target in targets:
            self.g.edges.setdefault(self.fn.qualname, set()).add(target)

    def _record_call(self, targets: Sequence[str], line: int) -> None:
        locks = self._locks()
        for target in targets:
            self.g.edges.setdefault(self.fn.qualname, set()).add(target)
            self.g.calls.append(
                CallSite(
                    caller=self.fn.qualname,
                    callee=target,
                    path=self.fn.path,
                    line=line,
                    locks=locks,
                )
            )

    def _lock_id(self, node: ast.expr) -> Optional[str]:
        """``with self._lock:`` (or a typed chain) → the lock's id."""
        if not isinstance(node, ast.Attribute):
            return None
        base = self._type_of(node.value)
        if base is None or base.kind != "class" or not base.cls:
            return None
        if self.g.attr_ctor(base.cls, node.attr) in LOCK_CTORS:
            return f"{self.g.attr_owner(base.cls, node.attr)}.{node.attr}"
        return None

    # -- recursive visit -------------------------------------------------

    def _visit_body(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._visit(stmt)

    def _visit(self, node: ast.AST) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            self._visit_with(node)
        elif isinstance(node, ast.Assign):
            self._visit_assign(node)
        elif isinstance(node, ast.AnnAssign):
            self._visit_annassign(node)
        elif isinstance(node, ast.AugAssign):
            self._visit_augassign(node)
        elif isinstance(node, ast.Delete):
            for tgt in node.targets:
                if isinstance(tgt, ast.Subscript) and isinstance(
                    tgt.value, ast.Attribute
                ):
                    self._record_access(tgt.value, write=True)
                    self._visit_expr(tgt.value.value)
                elif isinstance(tgt, ast.Attribute):
                    self._record_access(tgt, write=True)
                else:
                    self._visit_expr(tgt)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            self._visit_expr(node.iter)
            ref = self._type_of(node.iter)
            self._bind(node.target, ref.elem() if ref is not None else None)
            self._visit_body(node.body)
            self._visit_body(node.orelse)
        elif isinstance(node, ast.Call):
            self._visit_call(node)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            self._visit_comprehensions(node.generators)
            self._visit(node.elt)
        elif isinstance(node, ast.DictComp):
            self._visit_comprehensions(node.generators)
            self._visit(node.key)
            self._visit(node.value)
        elif isinstance(node, ast.Attribute):
            if isinstance(node.ctx, ast.Load):
                self._record_access(node, write=False)
            self._visit_expr(node.value)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested function: scan its body in the same env (approximate).
            self._visit_body(node.body)
        elif isinstance(node, ast.Lambda):
            self._visit(node.body)
        else:
            for child in ast.iter_child_nodes(node):
                self._visit(child)

    def _visit_expr(self, node: ast.expr) -> None:
        self._visit(node)

    def _visit_comprehensions(
        self, generators: Sequence[ast.comprehension]
    ) -> None:
        for gen in generators:
            self._visit_expr(gen.iter)
            ref = self._type_of(gen.iter)
            self._bind(gen.target, ref.elem() if ref is not None else None)
            for cond in gen.ifs:
                self._visit_expr(cond)

    def _visit_with(self, node: ast.With) -> None:
        acquired: List[str] = []
        for item in node.items:
            lock = self._lock_id(item.context_expr)
            if lock is not None:
                self.g.acquires.append(
                    LockAcquire(
                        func=self.fn.qualname,
                        path=self.fn.path,
                        line=item.context_expr.lineno,
                        lock=lock,
                        held=self._locks(),
                    )
                )
                self.held.append(lock)
                acquired.append(lock)
            else:
                self._visit_expr(item.context_expr)
            if item.optional_vars is not None:
                self._bind(item.optional_vars, None)
        self._visit_body(node.body)
        for _ in acquired:
            self.held.pop()

    def _visit_assign(self, node: ast.Assign) -> None:
        # Record a bound thread creation before visiting the value, so
        # the call visitor can tell bound from discarded constructions.
        thread_bound = self._maybe_thread_create(node.value, node.targets)
        self._visit_expr(node.value)
        ref = self._type_of(node.value)
        for tgt in node.targets:
            if isinstance(tgt, ast.Attribute):
                self._record_access(tgt, write=True)
                self._visit_expr(tgt.value)
            elif isinstance(tgt, ast.Subscript):
                if isinstance(tgt.value, ast.Attribute):
                    self._maybe_route_registration(tgt, node.value)
                    self._record_access(tgt.value, write=True)
                    self._visit_expr(tgt.value.value)
                else:
                    self._visit_expr(tgt.value)
                self._visit_expr(tgt.slice)
            else:
                self._bind(tgt, ref)
                if thread_bound and isinstance(tgt, ast.Name):
                    self.local_threads.add(tgt.id)

    def _visit_annassign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._maybe_thread_create(node.value, [node.target])
            self._visit_expr(node.value)
        tgt = node.target
        if isinstance(tgt, ast.Attribute):
            self._record_access(tgt, write=True)
            self._visit_expr(tgt.value)
        elif isinstance(tgt, ast.Name):
            ref = self.b._parse_annotation(node.annotation, self.fn.module)
            if ref is None and node.value is not None:
                ref = self._type_of(node.value)
            self._bind(tgt, ref)

    def _visit_augassign(self, node: ast.AugAssign) -> None:
        self._visit_expr(node.value)
        tgt = node.target
        if isinstance(tgt, ast.Attribute):
            self._record_access(tgt, write=True)
            self._visit_expr(tgt.value)
        elif isinstance(tgt, ast.Subscript):
            if isinstance(tgt.value, ast.Attribute):
                self._record_access(tgt.value, write=True)
                self._visit_expr(tgt.value.value)
            self._visit_expr(tgt.slice)

    def _maybe_route_registration(
        self, target: ast.Subscript, value: ast.expr
    ) -> None:
        """``self.routes[...] = self._route_x`` marks an HTTP entrypoint."""
        tval = target.value
        if not (isinstance(tval, ast.Attribute) and tval.attr == "routes"):
            return
        if not (
            isinstance(value, ast.Attribute)
            and isinstance(value.value, ast.Name)
            and value.value.id == "self"
            and self.fn.cls is not None
        ):
            return
        method = self.g.resolve_method(self.fn.cls, value.attr)
        if method is not None:
            fn = self.g.functions[method]
            self.g.entrypoints.append(
                Entrypoint(method, "http", fn.path, value.lineno)
            )
            self._add_edges([method])

    def _maybe_thread_create(
        self, value: ast.expr, targets: Sequence[ast.expr]
    ) -> bool:
        if not isinstance(value, ast.Call):
            return False
        dotted = self._dotted(value.func)
        if dotted not in THREAD_CTORS:
            return False
        bound: Optional[Tuple[str, str]] = None
        for tgt in targets:
            if (
                isinstance(tgt, ast.Attribute)
                and isinstance(tgt.value, ast.Name)
                and tgt.value.id == "self"
            ):
                bound = ("attr", tgt.attr)
            elif isinstance(tgt, ast.Name):
                bound = ("local", tgt.id)
        self.g.thread_creates.append(
            ThreadCreate(
                func=self.fn.qualname,
                cls=self.fn.cls,
                path=self.fn.path,
                line=value.lineno,
                bound=bound,
            )
        )
        return bound is not None and bound[0] == "local"

    def _dotted(self, func: ast.expr) -> Optional[str]:
        raw = _dotted_expr(func)
        if raw is None:
            return None
        aliases = self.b._aliases.get(self.fn.module, {})
        head, _, rest = raw.partition(".")
        return aliases.get(head, head) + ("." + rest if rest else "")

    # -- calls -----------------------------------------------------------

    def _visit_call(self, node: ast.Call) -> None:
        func = node.func
        dotted = self._dotted(func)

        if dotted in THREAD_CTORS:
            self._thread_target_entry(node)
            # An unbound ``threading.Thread(...)`` expression statement —
            # record it so unmanaged-thread sees it (Assign paths record
            # through _maybe_thread_create instead).
            if not self._is_assigned_thread(node):
                self.g.thread_creates.append(
                    ThreadCreate(
                        func=self.fn.qualname,
                        cls=self.fn.cls,
                        path=self.fn.path,
                        line=node.lineno,
                        bound=None,
                    )
                )
            for kw in node.keywords:
                if kw.arg != "target":
                    self._visit_expr(kw.value)
            for arg in node.args:
                self._visit_expr(arg)
            return

        targets = self._resolve_call(node)
        if targets:
            self._record_call(targets, node.lineno)
        self._maybe_blocking(node, dotted)

        if isinstance(func, ast.Attribute):
            self._maybe_mutator(func)
            self._maybe_join_or_set(func)
            self._visit_expr(func.value)
        for arg in node.args:
            self._visit_expr(arg)
        for kw in node.keywords:
            self._visit_expr(kw.value)

    def _is_assigned_thread(self, node: ast.Call) -> bool:
        # _visit_assign handles bound creations before visiting the value;
        # it marks them by appending to thread_creates already. Detect by
        # checking the last recorded creation for this line.
        for create in reversed(self.g.thread_creates):
            if (
                create.func == self.fn.qualname
                and create.line == node.lineno
                and create.bound is not None
            ):
                return True
        return False

    def _thread_target_entry(self, node: ast.Call) -> None:
        for kw in node.keywords:
            if kw.arg != "target":
                continue
            target = kw.value
            quals: List[str] = []
            if isinstance(target, ast.Attribute):
                base = self._type_of(target.value)
                if base is not None and base.kind == "class" and base.cls:
                    quals = self._method_targets(base.cls, target.attr)
            elif isinstance(target, ast.Name):
                local = self.b._module_funcs.get(self.fn.module, {}).get(target.id)
                if local is not None:
                    quals = [local]
            # No call edge: ``Thread(target=X)`` runs X on the *new*
            # thread, so the spawner's color must not leak into it — the
            # entrypoint record is what seeds the worker BFS instead.
            for qual in quals:
                fn = self.g.functions[qual]
                self.g.entrypoints.append(
                    Entrypoint(qual, "worker", fn.path, node.lineno)
                )

    def _resolve_call(self, node: ast.Call) -> List[str]:
        func = node.func
        if isinstance(func, ast.Name):
            local = self.b._module_funcs.get(self.fn.module, {}).get(func.id)
            if local is not None:
                return [local]
            resolved = self.b._resolve_dotted(self.fn.module, func.id)
            if resolved is not None:
                init = self.g.resolve_method(resolved, "__init__")
                return [init] if init is not None else []
            aliases = self.b._aliases.get(self.fn.module, {})
            dotted = aliases.get(func.id)
            if dotted is not None and dotted in self.g.functions:
                return [dotted]
            return []
        if not isinstance(func, ast.Attribute):
            return []
        # ``super().m()``
        if (
            isinstance(func.value, ast.Call)
            and isinstance(func.value.func, ast.Name)
            and func.value.func.id == "super"
            and self.fn.cls is not None
        ):
            info = self.g.classes.get(self.fn.cls)
            if info is not None:
                for base in info.bases:
                    method = self.g.resolve_method(base, func.attr)
                    if method is not None:
                        return [method]
            return []
        recv = self._type_of(func.value)
        if recv is not None and recv.kind == "class" and recv.cls:
            return self._method_targets(recv.cls, func.attr)
        # ``ClassName.method`` / ``module.Class.method`` references.
        raw = _dotted_expr(func)
        if raw is not None and "." in raw:
            prefix, method_name = raw.rsplit(".", 1)
            resolved = self.b._resolve_dotted(self.fn.module, prefix)
            if resolved is not None:
                method = self.g.resolve_method(resolved, method_name)
                if method is not None:
                    return [method]
            dotted = self._dotted(func)
            if dotted is not None and dotted in self.g.functions:
                return [dotted]
        return []

    def _maybe_blocking(self, node: ast.Call, dotted: Optional[str]) -> None:
        what: Optional[str] = None
        if dotted in ("time.sleep",):
            what = "time.sleep()"
        elif dotted in ("open", "io.open"):
            what = "open()"
        elif isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            recv = node.func.value
            if isinstance(recv, ast.Attribute):
                base = self._type_of(recv.value)
                if base is not None and base.kind == "class" and base.cls:
                    ctor = self.g.attr_ctor(base.cls, recv.attr)
                    if ctor in QUEUE_CTORS and attr in ("get", "put", "join"):
                        if not _nonblocking_call(node):
                            what = f"queue .{attr}() on self.{recv.attr}"
                    elif ctor in THREAD_CTORS and attr == "join":
                        what = f"thread .join() on self.{recv.attr}"
                    elif ctor in EVENT_CTORS and attr == "wait":
                        what = f"event .wait() on self.{recv.attr}"
        if what is not None:
            self.g.blocking.append(
                BlockingOp(
                    func=self.fn.qualname,
                    path=self.fn.path,
                    line=node.lineno,
                    what=what,
                    locks=self._locks(),
                )
            )

    def _maybe_mutator(self, func: ast.Attribute) -> None:
        if func.attr not in MUTATOR_METHODS:
            return
        if not isinstance(func.value, ast.Attribute):
            return
        base = self._type_of(func.value.value)
        if base is None or base.kind != "class" or not base.cls:
            return
        cls = base.cls
        attr = func.value.attr
        if self.g.resolve_method(cls, attr) is not None:
            return
        if self.g.attr_ctor(cls, attr) in SYNC_CTORS:
            return
        self.g.accesses.append(
            AttrAccess(
                owner=self.g.attr_owner(cls, attr),
                attr=attr,
                func=self.fn.qualname,
                path=self.fn.path,
                line=func.lineno,
                write=True,
                locks=self._locks(),
            )
        )

    def _maybe_join_or_set(self, func: ast.Attribute) -> None:
        attr = func.attr
        recv = func.value
        if isinstance(recv, ast.Name) and attr == "join":
            if recv.id in self.local_threads:
                self.fn.local_joins.add(recv.id)
            return
        if not isinstance(recv, ast.Attribute):
            return
        base = self._type_of(recv.value)
        if base is None or base.kind != "class" or not base.cls:
            return
        info = self.g.classes.get(self.g.attr_owner(base.cls, recv.attr))
        if info is None:
            return
        ctor = self.g.attr_ctor(base.cls, recv.attr)
        if attr == "join" and ctor in THREAD_CTORS:
            info.join_attrs.add(recv.attr)
        elif attr == "set" and ctor in EVENT_CTORS:
            info.event_set_attrs.add(recv.attr)


# ----------------------------------------------------------------------
# Small shared helpers
# ----------------------------------------------------------------------


def _dotted_expr(node: ast.expr) -> Optional[str]:
    """``a.b.c`` as a string for Name/Attribute chains, else None."""
    parts: List[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    parts.append(cur.id)
    return ".".join(reversed(parts))


def _nonblocking_call(node: ast.Call) -> bool:
    """``.get(block=False)`` / ``.put(item, block=False)`` do not wait."""
    for kw in node.keywords:
        if kw.arg == "block" and isinstance(kw.value, ast.Constant):
            if kw.value.value is False:
                return True
    return False


def _parse_guarded_by(node: ast.expr) -> Dict[str, str]:
    """``_GUARDED_BY = {"attr": "why"}`` → the declared exemptions.

    Non-literal shapes are ignored (the lint rule reports an empty or
    missing justification separately).
    """
    out: Dict[str, str] = {}
    if not isinstance(node, ast.Dict):
        return out
    for key, value in zip(node.keys, node.values):
        if (
            isinstance(key, ast.Constant)
            and isinstance(key.value, str)
            and isinstance(value, ast.Constant)
            and isinstance(value.value, str)
        ):
            out[key.value] = value.value
    return out
