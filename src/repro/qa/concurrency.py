"""Thread-aware lint rules over the call graph: the concurrency suite.

Four rules, all riding the normal :class:`~repro.qa.framework.Rule`
engine (so ``# flowlint: disable=RULE -- why`` pragmas and the pragma
budget apply unchanged):

* ``lock-discipline`` — an instance attribute written by code reachable
  from one thread color and read from another must hold one common lock
  at *every* non-construction access, or be declared in the owning
  class's ``_GUARDED_BY = {"attr": "why"}`` table;
* ``blocking-under-lock`` — no ``time.sleep``, ``open()``, or blocking
  ``queue.get/put``/``.join()`` while a lock is held, directly or through
  any call chain;
* ``lock-order`` — the same two locks acquired in both nesting orders is
  a deadlock waiting for load;
* ``unmanaged-thread`` — every ``threading.Thread(...)`` needs a
  shutdown path: bound and ``.join()``-ed, or stoppable via an Event.

The rules only *report* inside :data:`CONCURRENCY_PACKAGES` (the
threaded service and its HTTP surface) but the call graph is built over
the whole project, so a race between the service and code that calls
into it is still seen.

Held-lock context is interprocedural: a helper whose every call site
holds ``self._lock`` is analyzed as holding it too (the greatest
fixpoint of intersecting call-site locksets), so the
``_publish_locked``-style pattern needs no annotation.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.qa.callgraph import (
    AttrAccess,
    CallGraph,
    Entrypoint,
    FunctionInfo,
)
from repro.qa.framework import Finding, Project, Rule, findings_sorted

#: Where the concurrency rules report findings. The call graph itself is
#: project-wide; this bounds the *owners* (lock-discipline) and *sites*
#: (other rules) that can fire, keeping single-threaded packages quiet.
CONCURRENCY_PACKAGES: Tuple[str, ...] = ("repro.service", "repro.obs.httpd")


def _in_scope(module: str, packages: Sequence[str]) -> bool:
    return any(module == p or module.startswith(p + ".") for p in packages)


def _short(qualname: str) -> str:
    """``repro.service.daemon.StreamService`` → ``StreamService``."""
    return qualname.rsplit(".", 1)[-1]


class ConcurrencyAnalysis:
    """One call graph + derived tables, shared by all four rules.

    The engine calls every rule's ``check_project`` with the same
    project; the first call builds everything, the rest reuse it.
    """

    def __init__(self, packages: Sequence[str] = CONCURRENCY_PACKAGES) -> None:
        self.packages = tuple(packages)
        self._project: Optional[Project] = None
        self.graph: CallGraph = CallGraph()
        self.inherited: Dict[str, FrozenSet[str]] = {}
        self._acq_closure: Dict[str, FrozenSet[str]] = {}
        self._blocking_fns: Set[str] = set()

    def ensure(self, project: Project) -> None:
        if self._project is project:
            return
        self._project = project
        self.graph = CallGraph.build(project)
        self.inherited = self._inherited_locks()
        self._acq_closure = {}
        self._blocking_fns = {op.func for op in self.graph.blocking}

    # -- derived tables --------------------------------------------------

    def _inherited_locks(self) -> Dict[str, FrozenSet[str]]:
        """Locks held at *every* call site, propagated to the callee.

        Greatest-fixpoint dataflow: start every function that has project
        call sites at "universe" (None), entrypoints and rootless
        functions at the empty set, then repeatedly intersect
        ``site.locks | inherited(caller)`` across call sites until
        stable. Cycles that never touch a root stay at universe and are
        resolved to the empty set — under-approximating held locks can
        only produce an extra finding, never hide a race... the opposite:
        for *guard* checks an over-approximation could hide a race, so
        unresolved means unguarded.
        """
        graph = self.graph
        sites: Dict[str, List[Tuple[str, FrozenSet[str]]]] = defaultdict(list)
        for call in graph.calls:
            sites[call.callee].append((call.caller, call.locks))
        entries = {e.qualname for e in graph.entrypoints}
        inh: Dict[str, Optional[FrozenSet[str]]] = {}
        for qual in graph.functions:
            if qual in entries or not sites.get(qual):
                inh[qual] = frozenset()
            else:
                inh[qual] = None
        changed = True
        while changed:
            changed = False
            for qual, call_sites in sites.items():
                if qual in entries or qual not in inh:
                    continue
                acc: Optional[FrozenSet[str]] = None
                for caller, locks in call_sites:
                    caller_inh = inh.get(caller, frozenset())
                    if caller_inh is None:
                        continue  # universe: contributes no restriction yet
                    contrib = locks | caller_inh
                    acc = contrib if acc is None else (acc & contrib)
                if acc is not None and acc != inh[qual]:
                    inh[qual] = acc
                    changed = True
        return {q: (v or frozenset()) for q, v in inh.items()}

    def effective_locks(self, func: str, site_locks: FrozenSet[str]) -> FrozenSet[str]:
        return site_locks | self.inherited.get(func, frozenset())

    def acq_closure(self, func: str) -> FrozenSet[str]:
        """Every lock acquired in ``func`` or anything it can reach."""
        cached = self._acq_closure.get(func)
        if cached is not None:
            return cached
        reach = self.graph.reachable(func)
        out = frozenset(
            acq.lock for acq in self.graph.acquires if acq.func in reach
        )
        self._acq_closure[func] = out
        return out

    def blocking_reachable(self, func: str) -> Optional[str]:
        """A description of the first blocking op reachable from ``func``."""
        reach = self.graph.reachable(func)
        hits = [op for op in self.graph.blocking if op.func in reach]
        if not hits:
            return None
        hits.sort(key=lambda op: (op.path, op.line))
        op = hits[0]
        return f"{op.what} in {_short(op.func)} ({op.path}:{op.line})"

    def fn_module(self, qual: str) -> str:
        info = self.graph.functions.get(qual)
        return info.module if info is not None else ""


class _ConcurrencyRule(Rule):
    """Base: holds the shared analysis and triggers it per project."""

    def __init__(self, analysis: ConcurrencyAnalysis) -> None:
        self.analysis = analysis

    def check_project(self, project: Project) -> Iterator[Finding]:
        self.analysis.ensure(project)
        return iter(findings_sorted(self._check()))

    def _check(self) -> Iterator[Finding]:
        raise NotImplementedError


class LockDisciplineRule(_ConcurrencyRule):
    """Shared attributes need one common lock (or a _GUARDED_BY entry)."""

    name = "lock-discipline"
    description = (
        "instance attributes written on one thread and read on another "
        "must hold a common lock at every access, or be declared in the "
        "class's _GUARDED_BY table with a justification"
    )

    def _check(self) -> Iterator[Finding]:
        analysis = self.analysis
        graph = analysis.graph
        grouped: Dict[Tuple[str, str], List[AttrAccess]] = defaultdict(list)
        for access in graph.accesses:
            cls = graph.classes.get(access.owner)
            if cls is None or not _in_scope(cls.module, analysis.packages):
                continue
            grouped[(access.owner, access.attr)].append(access)

        for (owner, attr), accesses in sorted(grouped.items()):
            reason = graph.guarded_reason(owner, attr)
            if reason is not None:
                continue  # sanctioned (emptiness checked below)
            live = [a for a in accesses if not graph.is_exempt(a.func)]
            if not live:
                continue
            writes = [a for a in live if a.write]
            if not writes:
                continue
            colors: Set[str] = set()
            for access in live:
                colors.update(graph.color(access.func))
            if len(colors) < 2:
                continue
            common = frozenset.intersection(
                *[analysis.effective_locks(a.func, a.locks) for a in live]
            )
            if common:
                continue
            # Anchor the finding at the least-guarded site: prefer an
            # accessor holding nothing, writes before reads.
            def _bare(a: AttrAccess) -> Tuple[int, int, str, int]:
                locked = 1 if analysis.effective_locks(a.func, a.locks) else 0
                return (locked, 0 if a.write else 1, a.path, a.line)

            anchor = sorted(live, key=_bare)[0]
            where = ", ".join(
                sorted({f"{_short(a.func)}[{'+'.join(sorted(graph.color(a.func)) or ['?'])}]" for a in live})[:4]
            )
            yield Finding(
                rule=self.name,
                path=anchor.path,
                line=anchor.line,
                message=(
                    f"{_short(owner)}.{attr} is accessed from multiple thread "
                    f"colors ({', '.join(sorted(colors))}) with no common lock "
                    f"(sites: {where}); guard every access with one lock "
                    f"(e.g. `with self._lock:`) or declare it in "
                    f"{_short(owner)}._GUARDED_BY with a justification"
                ),
            )

        # Empty _GUARDED_BY justifications are findings, not exemptions.
        for cls in sorted(graph.classes.values(), key=lambda c: c.qualname):
            if not _in_scope(cls.module, analysis.packages):
                continue
            for attr, why in sorted(cls.guarded_by.items()):
                if not why.strip():
                    yield Finding(
                        rule=self.name,
                        path=cls.path,
                        line=cls.line,
                        message=(
                            f"{cls.name}._GUARDED_BY[{attr!r}] has an empty "
                            "justification; say why the attribute is safe "
                            "without a lock"
                        ),
                    )


class BlockingUnderLockRule(_ConcurrencyRule):
    """No sleeping, file I/O, or queue waits while holding a lock."""

    name = "blocking-under-lock"
    description = (
        "blocking operations (time.sleep, open(), blocking queue "
        "get/put/join, thread joins) must not run while a lock is held"
    )

    def _check(self) -> Iterator[Finding]:
        analysis = self.analysis
        graph = analysis.graph
        seen: Set[Tuple[str, int]] = set()
        for op in graph.blocking:
            if not _in_scope(analysis.fn_module(op.func), analysis.packages):
                continue
            held = analysis.effective_locks(op.func, op.locks)
            if not held or (op.path, op.line) in seen:
                continue
            seen.add((op.path, op.line))
            inherited_note = (
                "" if op.locks else " (lock held by every caller)"
            )
            yield Finding(
                rule=self.name,
                path=op.path,
                line=op.line,
                message=(
                    f"blocking {op.what} while holding "
                    f"{', '.join(sorted(held))}{inherited_note}; blocking "
                    "under a lock stalls every thread contending for it — "
                    "move the work outside the locked region"
                ),
            )
        for call in graph.calls:
            if not _in_scope(analysis.fn_module(call.caller), analysis.packages):
                continue
            held = analysis.effective_locks(call.caller, call.locks)
            if not held or (call.path, call.line) in seen:
                continue
            blocked = analysis.blocking_reachable(call.callee)
            if blocked is None:
                continue
            seen.add((call.path, call.line))
            yield Finding(
                rule=self.name,
                path=call.path,
                line=call.line,
                message=(
                    f"call to {_short(call.callee)}() while holding "
                    f"{', '.join(sorted(held))} can block: it reaches "
                    f"{blocked}; move the call outside the locked region"
                ),
            )


class LockOrderRule(_ConcurrencyRule):
    """Two locks taken in both nesting orders deadlock under load."""

    name = "lock-order"
    description = (
        "pairwise lock acquisition order must be globally consistent; "
        "A-then-B somewhere and B-then-A elsewhere is a deadlock hazard"
    )

    def _check(self) -> Iterator[Finding]:
        analysis = self.analysis
        graph = analysis.graph
        #: (held, acquired) -> first witnessing site.
        pairs: Dict[Tuple[str, str], Tuple[str, int, str]] = {}

        def note(held: FrozenSet[str], acquired: str, path: str, line: int, fn: str) -> None:
            for h in held:
                if h != acquired:
                    pairs.setdefault((h, acquired), (path, line, fn))

        for acq in graph.acquires:
            note(
                analysis.effective_locks(acq.func, acq.held),
                acq.lock,
                acq.path,
                acq.line,
                acq.func,
            )
        for call in graph.calls:
            held = analysis.effective_locks(call.caller, call.locks)
            if not held:
                continue
            for lock in analysis.acq_closure(call.callee):
                note(held, lock, call.path, call.line, call.caller)

        reported: Set[Tuple[str, str]] = set()
        for (a, b), (path, line, fn) in sorted(pairs.items()):
            if (b, a) not in pairs or (b, a) in reported:
                continue
            reported.add((a, b))
            other_path, other_line, _ = pairs[(b, a)]
            here_in_scope = _in_scope(analysis.fn_module(fn), analysis.packages)
            if not here_in_scope:
                continue
            yield Finding(
                rule=self.name,
                path=path,
                line=line,
                message=(
                    f"locks {_short(a)} and {_short(b)} are acquired in both "
                    f"orders ({_short(a)}→{_short(b)} here, "
                    f"{_short(b)}→{_short(a)} at {other_path}:{other_line}); "
                    "pick one global order to make deadlock impossible"
                ),
            )


class UnmanagedThreadRule(_ConcurrencyRule):
    """Every thread needs a join or stop-Event path to shutdown."""

    name = "unmanaged-thread"
    description = (
        "threading.Thread(...) must be bound and joined (or stoppable "
        "via an Event that some method sets); fire-and-forget threads "
        "leak work past shutdown"
    )

    def _check(self) -> Iterator[Finding]:
        analysis = self.analysis
        graph = analysis.graph
        for create in graph.thread_creates:
            if not _in_scope(analysis.fn_module(create.func), analysis.packages):
                continue
            managed = False
            detail = "the thread object is discarded"
            if create.bound is not None and create.bound[0] == "attr":
                attr = create.bound[1]
                owner = (
                    graph.attr_owner(create.cls, attr)
                    if create.cls is not None
                    else None
                )
                info = graph.classes.get(owner) if owner else None
                if info is not None:
                    managed = attr in info.join_attrs or bool(
                        info.event_set_attrs
                    )
                    detail = (
                        f"self.{attr} is never joined and "
                        f"{info.name} sets no stop Event"
                    )
            elif create.bound is not None and create.bound[0] == "local":
                local = create.bound[1]
                fn = graph.functions.get(create.func)
                managed = fn is not None and local in fn.local_joins
                detail = f"local {local!r} is never joined"
            if managed:
                continue
            yield Finding(
                rule=self.name,
                path=create.path,
                line=create.line,
                message=(
                    f"thread created without a shutdown path: {detail}; "
                    "join it on stop() or guard its loop with a stop "
                    "Event so work cannot leak past exit"
                ),
            )


def concurrency_rules(
    packages: Sequence[str] = CONCURRENCY_PACKAGES,
) -> List[Rule]:
    """The four concurrency rules sharing one analysis cache."""
    analysis = ConcurrencyAnalysis(packages)
    return [
        LockDisciplineRule(analysis),
        BlockingUnderLockRule(analysis),
        LockOrderRule(analysis),
        UnmanagedThreadRule(analysis),
    ]
