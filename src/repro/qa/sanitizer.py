"""Runtime lockset race sanitizer (the Eraser algorithm, opt-in).

The static rules (:mod:`repro.qa.concurrency`) reason about code; this
module watches an actual run. It implements the classic Eraser lockset
discipline: for every shared instance attribute, track the set of locks
held at each access; the *candidate lockset* is the intersection across
accesses, and when it goes empty on a write after the attribute has been
seen from a second thread, no lock consistently protects it — a data
race candidate, reported with both access sites.

Pieces:

* :class:`TrackedLock` — wraps a ``threading.Lock``/``RLock`` so
  acquisitions land in a per-thread held-lock set;
* :func:`instrument_class` — patches ``__setattr__``/``__getattribute__``
  on a class so instance-attribute accesses report to the active
  checker (returns an undo callable); :func:`race_checked` is the
  decorator form for test fixtures;
* :func:`wrap_locks` — replaces every plain lock attribute on an
  *instance* with a :class:`TrackedLock`;
* :class:`LocksetChecker` — the state machine + report.

Instrumentation is process-global but inert unless a checker is
``activate()``-d (a context manager), so production code paths never pay
for it. The checker honours ``_GUARDED_BY`` class tables — attributes
the static layer sanctioned are skipped at runtime too.

Known limitation, same as the static layer: container *mutations*
(``list.append`` on an already-read attribute) look like reads here,
because only the attribute fetch is visible to ``__getattribute__``.
The static mutator-call analysis covers that side.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Set, Tuple, Type

__all__ = [
    "LocksetChecker",
    "RaceReport",
    "TrackedLock",
    "instrument_class",
    "race_checked",
    "wrap_locks",
]

#: The per-thread set of TrackedLock names currently held.
_HELD = threading.local()

#: The active checker, if any. Module-global so instrumented classes
#: need no back-reference; None means instrumentation is inert.
_ACTIVE: Optional["LocksetChecker"] = None
_ACTIVE_LOCK = threading.Lock()

#: Attribute names never tracked: dunders, and the instrumentation's own
#: bookkeeping would recurse otherwise.
_SKIP_PREFIX = "__"


def _sync_types() -> Tuple[type, ...]:
    """Value types exempt from tracking: synchronization primitives are
    *how* you protect data, not data — reading ``self._lock`` before
    acquiring it is the whole point and must not be flagged."""
    return (
        TrackedLock,
        type(threading.Lock()),
        type(threading.RLock()),
        threading.Event,
        threading.Condition,
        threading.Semaphore,
        threading.Thread,
        queue.Queue,
        queue.SimpleQueue,
    )


def _held_names() -> Set[str]:
    names = getattr(_HELD, "names", None)
    if names is None:
        names = set()
        _HELD.names = names
    return names


#: Monotonic per-thread tokens. ``threading.get_ident()`` is recycled
#: once a thread exits, so a short-lived worker's successor could be
#: mistaken for the attribute's existing owner and mask a race; these
#: tokens are never reused within a process.
_TOKEN_LOCK = threading.Lock()
_TOKEN_NEXT = [0]


def _thread_token() -> int:
    token = getattr(_HELD, "token", None)
    if token is None:
        with _TOKEN_LOCK:
            token = _TOKEN_NEXT[0]
            _TOKEN_NEXT[0] += 1
        _HELD.token = token
    return token


class TrackedLock:
    """A lock wrapper whose acquisitions are visible to the checker.

    Context-manager and ``acquire``/``release`` compatible, so it can
    replace a ``threading.Lock`` attribute transparently.
    """

    def __init__(self, name: str, inner: Optional[threading.Lock] = None) -> None:
        self.name = name
        self._inner = inner if inner is not None else threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        ok = self._inner.acquire(blocking, timeout)
        if ok:
            _held_names().add(self.name)
        return ok

    def release(self) -> None:
        _held_names().discard(self.name)
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> "TrackedLock":
        self.acquire()
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"TrackedLock({self.name!r})"


@dataclass(frozen=True)
class _Access:
    """One witnessed access, kept for the report."""

    thread: str
    write: bool
    locks: FrozenSet[str]


@dataclass
class RaceReport:
    """One attribute whose candidate lockset went empty."""

    cls: str
    attr: str
    first: _Access
    second: _Access

    def render(self) -> str:
        return (
            f"{self.cls}.{self.attr}: lockset went empty — "
            f"{'write' if self.second.write else 'read'} on thread "
            f"{self.second.thread} held {sorted(self.second.locks) or '{}'} "
            f"vs earlier {'write' if self.first.write else 'read'} on "
            f"{self.first.thread} holding {sorted(self.first.locks) or '{}'}"
        )


@dataclass
class _AttrState:
    """Eraser state for one (instance id, attribute)."""

    owner: int
    exclusive: bool = True
    transferred: bool = False
    lockset: Optional[FrozenSet[str]] = None
    written_shared: bool = False
    witness: Optional[_Access] = None


class LocksetChecker:
    """The Eraser state machine over instrumented attribute accesses.

    Usage (or use the ``lockset_checker`` pytest fixture)::

        checker = LocksetChecker()
        undo = instrument_class(StreamService)
        try:
            with checker.activate():
                ... run threads ...
        finally:
            undo()
        checker.assert_clean()

    States per (object, attr): *exclusive* while a single thread owns it
    (initialization writes are free), with one free ownership handoff —
    main-thread construction followed by worker-only use is benign and
    ordered by ``Thread.start``. Once a third party touches the
    attribute it is *shared*: the candidate lockset is seeded from that
    access and each later access intersects its held set in. A write
    while shared with an empty candidate lockset is a race candidate.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._states: Dict[Tuple[int, str], _AttrState] = {}
        self._races: Dict[Tuple[str, str], RaceReport] = {}
        self.accesses = 0

    # -- lifecycle -------------------------------------------------------

    def activate(self) -> "_Activation":
        return _Activation(self)

    # -- the state machine ----------------------------------------------

    def note(self, obj_id: int, cls_name: str, attr: str, write: bool) -> None:
        """Record one access. Called from instrumented dunders — must not
        touch ``obj`` itself (any attribute access would recurse)."""
        thread = _thread_token()
        locks = frozenset(_held_names())
        key = (obj_id, attr)
        with self._lock:
            self.accesses += 1
            state = self._states.get(key)
            if state is None:
                self._states[key] = _AttrState(
                    owner=thread,
                    witness=_Access(_thread_name(), write, locks),
                )
                return
            if state.exclusive:
                if thread == state.owner:
                    state.witness = _Access(_thread_name(), write, locks)
                    return
                if not state.transferred:
                    # One ownership handoff is free: the common benign
                    # pattern is construction on the main thread followed
                    # by exclusive use on a worker (handed off through a
                    # queue or Thread.start happens-before edge).
                    state.owner = thread
                    state.transferred = True
                    state.witness = _Access(_thread_name(), write, locks)
                    return
                # Third party: genuinely shared from here on; seed the
                # candidate lockset from this access.
                state.exclusive = False
                state.lockset = locks
            else:
                assert state.lockset is not None
                state.lockset = state.lockset & locks
            if write:
                state.written_shared = True
            if state.written_shared and not state.lockset:
                race_key = (cls_name, attr)
                if race_key not in self._races:
                    first = state.witness or _Access("?", False, frozenset())
                    self._races[race_key] = RaceReport(
                        cls=cls_name,
                        attr=attr,
                        first=first,
                        second=_Access(_thread_name(), write, locks),
                    )
            state.witness = _Access(_thread_name(), write, locks)

    # -- results ---------------------------------------------------------

    @property
    def races(self) -> List[RaceReport]:
        with self._lock:
            return sorted(
                self._races.values(), key=lambda r: (r.cls, r.attr)
            )

    def assert_clean(self) -> None:
        races = self.races
        if races:
            lines = "\n  ".join(r.render() for r in races)
            raise AssertionError(
                f"lockset sanitizer found {len(races)} race candidate(s):\n"
                f"  {lines}"
            )


class _Activation:
    def __init__(self, checker: LocksetChecker) -> None:
        self._checker = checker
        self._previous: Optional[LocksetChecker] = None

    def __enter__(self) -> LocksetChecker:
        global _ACTIVE
        with _ACTIVE_LOCK:
            self._previous = _ACTIVE
            _ACTIVE = self._checker
        return self._checker

    def __exit__(self, *exc: object) -> None:
        global _ACTIVE
        with _ACTIVE_LOCK:
            _ACTIVE = self._previous


def _thread_name() -> str:
    return threading.current_thread().name


# ----------------------------------------------------------------------
# Class instrumentation
# ----------------------------------------------------------------------


def _guarded_attrs(cls: type) -> FrozenSet[str]:
    """Attributes sanctioned by ``_GUARDED_BY`` anywhere in the MRO."""
    out: Set[str] = set()
    for base in cls.__mro__:
        table = base.__dict__.get("_GUARDED_BY")
        if isinstance(table, dict):
            out.update(str(k) for k in table)
    return frozenset(out)


def instrument_class(cls: Type[Any]) -> Callable[[], None]:
    """Patch ``cls`` so instance-attribute accesses report to the active
    checker; returns an undo callable restoring the originals.

    Only attributes living in the instance ``__dict__`` are tracked —
    methods, properties, and class attributes resolve through the class
    and are skipped, so the overhead stays on data, not dispatch.
    """
    if getattr(cls, "_lockset_instrumented", False):
        return lambda: None
    orig_setattr = cls.__setattr__
    orig_getattribute = cls.__getattribute__
    skip = _guarded_attrs(cls)
    sync = _sync_types()

    def tracked_setattr(self: Any, name: str, value: Any) -> None:
        checker = _ACTIVE
        if (
            checker is not None
            and not name.startswith(_SKIP_PREFIX)
            and name not in skip
            and not isinstance(value, sync)
        ):
            checker.note(id(self), cls.__name__, name, write=True)
        orig_setattr(self, name, value)

    def tracked_getattribute(self: Any, name: str) -> Any:
        checker = _ACTIVE
        if checker is not None and not name.startswith(_SKIP_PREFIX) and name not in skip:
            # Only instance data: class-level lookups are dispatch, and
            # synchronization primitives are the protection mechanism,
            # not protected data.
            d = orig_getattribute(self, "__dict__")
            if name in d and not isinstance(d[name], sync):
                checker.note(id(self), cls.__name__, name, write=False)
        return orig_getattribute(self, name)

    cls.__setattr__ = tracked_setattr  # type: ignore[method-assign, assignment]
    cls.__getattribute__ = tracked_getattribute  # type: ignore[method-assign, assignment]
    cls._lockset_instrumented = True  # type: ignore[attr-defined]

    def undo() -> None:
        cls.__setattr__ = orig_setattr  # type: ignore[method-assign, assignment]
        cls.__getattribute__ = orig_getattribute  # type: ignore[method-assign, assignment]
        if "_lockset_instrumented" in cls.__dict__:
            del cls._lockset_instrumented  # type: ignore[attr-defined]

    return undo


def race_checked(cls: Type[Any]) -> Type[Any]:
    """Class decorator form of :func:`instrument_class` (no undo)."""
    instrument_class(cls)
    return cls


def wrap_locks(obj: Any, prefix: str = "") -> List[str]:
    """Replace every plain lock attribute on ``obj`` with a
    :class:`TrackedLock`; returns the wrapped lock names.

    Call *after* construction and *before* threads start. The name is
    ``ClassName.attr`` so reports line up with the static rule's ids.
    """
    lock_types = (type(threading.Lock()), type(threading.RLock()))
    wrapped: List[str] = []
    label = prefix or type(obj).__name__
    for name, value in list(vars(obj).items()):
        if isinstance(value, lock_types):
            lock_name = f"{label}.{name}"
            object.__setattr__(obj, name, TrackedLock(lock_name, value))
            wrapped.append(lock_name)
        elif isinstance(value, TrackedLock):
            wrapped.append(value.name)
    return wrapped
