"""The flowlint domain rules.

Each rule encodes one invariant the reproduction's correctness rests on;
the module docstrings of the code under check own the *why*, the rule
docstrings here own the *what is flagged*. All rules are pure AST passes
— nothing here imports or executes the code being linted (the one
runtime dependency, the Prometheus name validator, is shared with
:mod:`repro.obs.names` so lint-time and run-time agree by construction).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.obs.names import (
    KNOWN_LABELS,
    is_known_metric,
    is_valid_label_name,
    is_valid_metric_name,
)
from repro.qa.framework import (
    Finding,
    ModuleFile,
    Project,
    Rule,
    dotted_call_name,
    import_aliases,
    iter_calls,
    literal_str,
)
from repro.qa.schemas import SchemaDriftRule

#: Packages whose code must not read the wall clock directly. The first
#: four run *inside* the simulation and take time from the engine clock;
#: the monitor and the streaming service sit on the stream side and time
#: themselves through the sanctioned observability clock
#: (:func:`repro.obs.tracing.wall_now`) so their diagnosis logic stays
#: replayable — stream timestamps in, stream timestamps out.
SIM_CLOCK_PACKAGES: Tuple[str, ...] = (
    "repro.netsim",
    "repro.openflow",
    "repro.apps",
    "repro.workload",
    "repro.core.monitor",
    "repro.service",
)

#: Packages that must be deterministic under a fixed seed — the sim-clock
#: packages plus everything that drives or perturbs a simulation.
DETERMINISM_PACKAGES: Tuple[str, ...] = SIM_CLOCK_PACKAGES + (
    "repro.faults",
    "repro.ops",
    "repro.scenarios",
    "repro.chaos",
)

#: Wall-clock reads banned inside the simulation packages.
WALL_CLOCK_CALLS: Tuple[str, ...] = (
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
)


class SimClockRule(Rule):
    """No wall-clock reads inside simulation packages.

    Simulated components must take time from the engine clock
    (``sim.now``); a ``time.time()`` in packet handling would couple
    model output to host load and break capture replay. Telemetry that
    genuinely measures host cost (e.g. callback duration histograms)
    carries a justified pragma instead.
    """

    name = "sim-clock"
    description = "simulation code must use the engine clock, not the wall clock"

    def check_module(self, module: ModuleFile) -> Iterator[Finding]:
        if module.tree is None or not module.in_package(SIM_CLOCK_PACKAGES):
            return
        aliases = import_aliases(module.tree)
        for call in iter_calls(module.tree):
            dotted = dotted_call_name(call, aliases)
            if dotted in WALL_CLOCK_CALLS:
                yield Finding(
                    rule=self.name,
                    path=module.path,
                    line=call.lineno,
                    message=(
                        f"wall-clock read {dotted}() in simulation package "
                        f"{module.module}; use the engine clock (sim.now)"
                    ),
                )


class DeterminismRule(Rule):
    """No shared-state randomness in simulation-driving packages.

    Module-level ``random.*`` calls draw from the interpreter-global RNG,
    whose state depends on import order and everything else in the
    process — two runs with the same scenario seed would diverge. Code in
    these packages must thread an explicitly seeded ``random.Random``
    instance; ``random.Random()`` *without* a seed (it seeds from the OS)
    is equally flagged.
    """

    name = "determinism"
    description = "simulation packages must use explicitly seeded RNG instances"

    def check_module(self, module: ModuleFile) -> Iterator[Finding]:
        if module.tree is None or not module.in_package(DETERMINISM_PACKAGES):
            return
        aliases = import_aliases(module.tree)
        for call in iter_calls(module.tree):
            dotted = dotted_call_name(call, aliases)
            if dotted is None or not (
                dotted == "random.Random" or dotted.startswith("random.")
            ):
                continue
            if dotted == "random.Random":
                if not call.args and not call.keywords:
                    yield Finding(
                        rule=self.name,
                        path=module.path,
                        line=call.lineno,
                        message=(
                            "unseeded random.Random() seeds from the OS; "
                            "pass an explicit seed"
                        ),
                    )
                continue
            yield Finding(
                rule=self.name,
                path=module.path,
                line=call.lineno,
                message=(
                    f"{dotted}() uses the interpreter-global RNG; thread a "
                    f"seeded random.Random instance instead"
                ),
            )


class OpenEncodingRule(Rule):
    """Every text-mode ``open()`` must pass ``encoding=``.

    Without it the platform locale decides how captures and models are
    read back — the same file can decode differently on two machines.
    Binary-mode opens (a literal mode containing ``"b"``) are exempt.
    """

    name = "open-encoding"
    description = "text-mode open() calls must pass encoding="

    def check_module(self, module: ModuleFile) -> Iterator[Finding]:
        if module.tree is None:
            return
        for call in iter_calls(module.tree):
            if not (isinstance(call.func, ast.Name) and call.func.id == "open"):
                continue
            if any(kw.arg == "encoding" for kw in call.keywords):
                continue
            mode: Optional[ast.expr] = None
            if len(call.args) >= 2:
                mode = call.args[1]
            for kw in call.keywords:
                if kw.arg == "mode":
                    mode = kw.value
            mode_text = literal_str(mode) if mode is not None else None
            if mode_text is not None and "b" in mode_text:
                continue
            yield Finding(
                rule=self.name,
                path=module.path,
                line=call.lineno,
                message=(
                    "open() without encoding= decodes with the platform "
                    "locale; pass encoding='utf-8' (or a literal binary mode)"
                ),
            )


class SignatureContractRule(Rule):
    """Every ``Signature`` subclass implements the full contract.

    The parallel shard pipeline merges signatures in tree order and the
    persistence layer round-trips them through JSON, so a direct subclass
    of :class:`repro.core.signatures.base.Signature` must define all of
    ``merge``/``diff``/``to_dict``/``from_dict`` (the associativity of
    ``merge`` is checked dynamically by the property harness in
    ``tests/test_signature_contract.py``). The inverse is enforced too: a
    class in the signatures package that defines both ``merge`` and
    ``diff`` is a signature component and must subclass ``Signature`` so
    the contract applies to it.
    """

    name = "signature-contract"
    description = "Signature subclasses define merge/diff/to_dict/from_dict"

    REQUIRED: Tuple[str, ...] = ("merge", "diff", "to_dict", "from_dict")
    _BASE = "repro.core.signatures.base.Signature"

    def check_project(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            if module.tree is None:
                continue
            aliases = import_aliases(module.tree)
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                defined = {
                    item.name
                    for item in node.body
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                }
                if self._bases_signature(node, aliases):
                    missing = [m for m in self.REQUIRED if m not in defined]
                    if missing:
                        yield Finding(
                            rule=self.name,
                            path=module.path,
                            line=node.lineno,
                            message=(
                                f"Signature subclass {node.name} is missing "
                                f"{', '.join(missing)} (see the Signature "
                                f"base class contract)"
                            ),
                        )
                elif (
                    module.in_package(("repro.core.signatures",))
                    and "merge" in defined
                    and "diff" in defined
                ):
                    yield Finding(
                        rule=self.name,
                        path=module.path,
                        line=node.lineno,
                        message=(
                            f"{node.name} defines merge and diff but does not "
                            f"subclass Signature; the contract (and its "
                            f"associativity harness) must apply to it"
                        ),
                    )

    def _bases_signature(
        self, node: ast.ClassDef, aliases: Dict[str, str]
    ) -> bool:
        for base in node.bases:
            if isinstance(base, ast.Name):
                resolved = aliases.get(base.id, base.id)
                if resolved == self._BASE or resolved.endswith(".Signature"):
                    return True
                if base.id == "Signature":
                    return True
            elif isinstance(base, ast.Attribute) and base.attr == "Signature":
                return True
        return False


class ForkSafetyRule(Rule):
    """Work shipped to a ``ProcessPoolExecutor`` must be fork-safe.

    The sharded modeling path shares its input via a module global that
    fork-children inherit copy-on-write; anything submitted to the pool
    must therefore be a *module-level* function (lambdas and closures
    don't pickle under spawn and silently capture stale state under
    fork), and the worker must not declare ``global`` — writes to module
    globals in a fork-child never propagate back, so a ``global``
    statement in a worker is a bug that reads as working code.
    """

    name = "fork-safety"
    description = "ProcessPoolExecutor work must be module-level, global-free"

    def check_module(self, module: ModuleFile) -> Iterator[Finding]:
        if module.tree is None:
            return
        aliases = import_aliases(module.tree)
        pool_names = self._pool_names(module.tree, aliases)
        if not pool_names:
            return
        top_level: Dict[str, ast.FunctionDef] = {
            node.name: node
            for node in module.tree.body
            if isinstance(node, ast.FunctionDef)
        }
        for call in iter_calls(module.tree):
            func = call.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr in ("map", "submit")
                and isinstance(func.value, ast.Name)
                and func.value.id in pool_names
            ):
                continue
            if not call.args:
                continue
            work = call.args[0]
            if isinstance(work, ast.Lambda):
                yield Finding(
                    rule=self.name,
                    path=module.path,
                    line=work.lineno,
                    message=(
                        "lambda submitted to a process pool; use a "
                        "module-level function (fork inherits it, spawn can "
                        "pickle it)"
                    ),
                )
                continue
            if not isinstance(work, ast.Name):
                yield Finding(
                    rule=self.name,
                    path=module.path,
                    line=call.lineno,
                    message=(
                        "process-pool work must be a module-level function "
                        "named directly (closures and bound methods capture "
                        "state fork-children cannot share back)"
                    ),
                )
                continue
            worker = top_level.get(work.id)
            if worker is None:
                yield Finding(
                    rule=self.name,
                    path=module.path,
                    line=call.lineno,
                    message=(
                        f"process-pool work {work.id!r} is not a module-level "
                        f"function in this module; closures capture state "
                        f"fork-children cannot share back"
                    ),
                )
                continue
            for stmt in ast.walk(worker):
                if isinstance(stmt, ast.Global):
                    yield Finding(
                        rule=self.name,
                        path=module.path,
                        line=stmt.lineno,
                        message=(
                            f"worker {worker.name!r} declares global "
                            f"{', '.join(stmt.names)}; writes to module "
                            f"globals in a fork-child never propagate back"
                        ),
                    )

    def _pool_names(
        self, tree: ast.Module, aliases: Dict[str, str]
    ) -> Set[str]:
        """Names bound to a ProcessPoolExecutor via with-as or assignment."""
        out: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if (
                        self._is_pool_call(item.context_expr, aliases)
                        and isinstance(item.optional_vars, ast.Name)
                    ):
                        out.add(item.optional_vars.id)
            elif isinstance(node, ast.Assign):
                if self._is_pool_call(node.value, aliases):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            out.add(target.id)
        return out

    def _is_pool_call(self, node: ast.expr, aliases: Dict[str, str]) -> bool:
        if not isinstance(node, ast.Call):
            return False
        dotted = dotted_call_name(node, aliases)
        return dotted is not None and dotted.endswith("ProcessPoolExecutor")


class MetricNamesRule(Rule):
    """Metric names are literal, valid, and declared in the manifest.

    Every ``.counter(...)``/``.gauge(...)``/``.histogram(...)`` call site
    must use a string-literal name that passes the shared Prometheus
    validator (:mod:`repro.obs.names`) *and* be declared — listed in
    :data:`~repro.obs.names.KNOWN_METRICS` or a member of a grammatical
    family (``telemetry_*``, ``profile_*``/``runs_*``, ``service_*``; see
    :func:`~repro.obs.names.is_known_metric`);
    label keyword names must be valid and in
    :data:`~repro.obs.names.KNOWN_LABELS`. Dynamic names are allowed only
    inside ``repro.obs`` itself (the JSONL round-trip rebuilds instruments
    from data, where the registry still validates at runtime).
    """

    name = "metric-names"
    description = "metric names must be literal, valid, and in the manifest"

    _FACTORIES: Tuple[str, ...] = ("counter", "gauge", "histogram")

    def check_module(self, module: ModuleFile) -> Iterator[Finding]:
        if module.tree is None:
            return
        in_obs = module.in_package(("repro.obs",))
        for call in iter_calls(module.tree):
            func = call.func
            if not (
                isinstance(func, ast.Attribute) and func.attr in self._FACTORIES
            ):
                continue
            if not call.args:
                continue
            name = literal_str(call.args[0])
            if name is None:
                if not in_obs:
                    yield Finding(
                        rule=self.name,
                        path=module.path,
                        line=call.lineno,
                        message=(
                            "metric name must be a string literal outside "
                            "repro.obs so the manifest check can see it"
                        ),
                    )
                continue
            if not is_valid_metric_name(name):
                yield Finding(
                    rule=self.name,
                    path=module.path,
                    line=call.lineno,
                    message=(
                        f"{name!r} is not a valid Prometheus metric name"
                    ),
                )
            elif not is_known_metric(name):
                yield Finding(
                    rule=self.name,
                    path=module.path,
                    line=call.lineno,
                    message=(
                        f"metric {name!r} is not declared in the manifest "
                        f"(add it to KNOWN_METRICS in repro/obs/names.py, "
                        f"or follow a declared family grammar: telemetry_*, "
                        f"profile_*/runs_*, service_*)"
                    ),
                )
            for kw in call.keywords:
                if kw.arg is None or kw.arg == "buckets":
                    continue
                if not is_valid_label_name(kw.arg):
                    yield Finding(
                        rule=self.name,
                        path=module.path,
                        line=call.lineno,
                        message=(
                            f"{kw.arg!r} is not a valid Prometheus label name"
                        ),
                    )
                elif kw.arg not in KNOWN_LABELS:
                    yield Finding(
                        rule=self.name,
                        path=module.path,
                        line=call.lineno,
                        message=(
                            f"label {kw.arg!r} is not declared in the "
                            f"manifest (add it to KNOWN_LABELS in "
                            f"repro/obs/names.py)"
                        ),
                    )


#: Data-plane packages whose loops execute once per simulated message —
#: the paths the raw-speed campaign de-churned. Allocation here is paid
#: millions of times per capture.
HOT_LOOP_PACKAGES: Tuple[str, ...] = (
    "repro.netsim",
    "repro.openflow",
)

#: Modules under the hot packages that only run at scenario-build time
#: (graph construction, one pass per topology) — per-iteration allocation
#: there is setup cost, not per-message churn.
SETUP_TIME_MODULES: Tuple[str, ...] = (
    "repro.netsim.topology",
)


class HotLoopAllocRule(Rule):
    """No per-iteration list/dict allocation in data-plane loops.

    Loops in the netsim/openflow data plane run once per simulated
    message, so a ``[]``/``{}`` display, ``list()``/``dict()`` call, or
    list/dict comprehension in the loop body allocates (and collects) a
    fresh container per message — the allocator churn the raw-speed
    campaign removed from the ingest path. Hoist the container out of the
    loop, reuse a scratch structure, or (for genuinely cold loops) carry
    a justified pragma. Scenario-build modules (:data:`SETUP_TIME_MODULES`)
    are exempt: their loops run once per topology, not per message.
    """

    name = "hot-loop-alloc"
    description = (
        "data-plane loops must not allocate a list/dict per iteration"
    )

    _ALLOC_NODES = (ast.List, ast.Dict, ast.ListComp, ast.DictComp)

    def check_module(self, module: ModuleFile) -> Iterator[Finding]:
        if (
            module.tree is None
            or not module.in_package(HOT_LOOP_PACKAGES)
            or module.in_package(SETUP_TIME_MODULES)
        ):
            return
        seen: Set[int] = set()
        for loop in ast.walk(module.tree):
            if not isinstance(loop, (ast.For, ast.While)):
                continue
            # Only the parts re-evaluated each iteration count: the body,
            # plus the test of a while. The iterable of a for and the
            # orelse of either run once per loop, not per message.
            roots: List[ast.AST] = list(loop.body)
            if isinstance(loop, ast.While):
                roots.append(loop.test)
            for root in roots:
                yield from self._scan(module, root, seen)

    def _scan(
        self, module: ModuleFile, root: ast.AST, seen: Set[int]
    ) -> Iterator[Finding]:
        for node in ast.walk(root):
            if id(node) in seen:
                continue
            what = self._allocation(node)
            if what is not None:
                seen.add(id(node))
                yield Finding(
                    rule=self.name,
                    path=module.path,
                    line=node.lineno,
                    message=(
                        f"{what} inside a data-plane loop allocates per "
                        f"message; hoist it out of the loop or reuse a "
                        f"scratch container"
                    ),
                )

    def _allocation(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.List):
            return "list display"
        if isinstance(node, ast.Dict):
            return "dict display"
        if isinstance(node, ast.ListComp):
            return "list comprehension"
        if isinstance(node, ast.DictComp):
            return "dict comprehension"
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("list", "dict")
        ):
            return f"{node.func.id}() call"
        return None


def default_rules(
    manifest_path: Optional[str] = None,
) -> List[Rule]:
    """The standard rule set ``repro lint`` runs.

    Args:
        manifest_path: override the schema manifest location (tests point
            this at fixtures); default is the checked-in
            ``repro/qa/schemas.json``.
    """
    return [
        SimClockRule(),
        DeterminismRule(),
        OpenEncodingRule(),
        SchemaDriftRule(manifest_path=manifest_path),
        SignatureContractRule(),
        ForkSafetyRule(),
        MetricNamesRule(),
        HotLoopAllocRule(),
    ]
