"""flowlint: domain-invariant static analysis for the reproduction.

FlowDiff's correctness rests on invariants the interpreter never checks:
simulation determinism (captures must replay identically or L1/L2 diffs
reflect the run, not the network), associative signature merges (the
parallel shard pipeline re-orders them), and stable serialization schemas
(models and captures silently corrupt downstream diffs when fields drift
without a ``FORMAT_VERSION`` bump). This package enforces those
invariants statically, as an AST pass over the source tree, exposed as
``repro lint`` and run as a hard CI gate.

Layout:

* :mod:`repro.qa.framework` — the engine: :class:`~repro.qa.framework.Rule`
  base class, per-file dispatch, ``# flowlint: disable=RULE`` pragmas,
  text/JSON reporters.
* :mod:`repro.qa.rules` — the domain rules (sim-clock discipline,
  determinism, open() encoding, signature contract, fork safety, metric
  hygiene).
* :mod:`repro.qa.schemas` — serialized-schema extraction and the
  ``schemas.json`` manifest keyed by ``FORMAT_VERSION``.
* :mod:`repro.qa.callgraph` — the interprocedural call graph with
  thread-entrypoint discovery and main/worker/http reachability
  coloring that powers the concurrency rules.
* :mod:`repro.qa.concurrency` — the concurrency rules (lock-discipline,
  blocking-under-lock, lock-order, unmanaged-thread), run via
  ``repro lint --concurrency``.
* :mod:`repro.qa.sanitizer` — the opt-in runtime Eraser-style lockset
  tracker asserted by the multi-threaded service stress test.
"""

from repro.qa.callgraph import CallGraph
from repro.qa.concurrency import CONCURRENCY_PACKAGES, concurrency_rules
from repro.qa.framework import (
    Finding,
    LintEngine,
    LintResult,
    ModuleFile,
    Project,
    Rule,
    render_json,
    render_text,
)
from repro.qa.rules import default_rules
from repro.qa.sanitizer import (
    LocksetChecker,
    RaceReport,
    TrackedLock,
    instrument_class,
    race_checked,
    wrap_locks,
)
from repro.qa.schemas import SchemaDriftRule, extract_schemas, update_manifest

__all__ = [
    "CONCURRENCY_PACKAGES",
    "CallGraph",
    "Finding",
    "LintEngine",
    "LintResult",
    "LocksetChecker",
    "ModuleFile",
    "Project",
    "RaceReport",
    "Rule",
    "SchemaDriftRule",
    "TrackedLock",
    "concurrency_rules",
    "default_rules",
    "extract_schemas",
    "instrument_class",
    "race_checked",
    "render_json",
    "render_text",
    "update_manifest",
    "wrap_locks",
]
