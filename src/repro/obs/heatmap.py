"""Topology heatmaps: the telemetry plane drawn over the network graph.

One self-contained HTML file (inline SVG, no scripts or external assets —
the same incident-ticket discipline as :mod:`repro.core.diff.html`, whose
stylesheet this report reuses). Links are colored by their retained-window
peak utilization and flagged when their loss process dropped packets;
switches are shaded by flow-table pressure. An injected hot link or a
hashing imbalance across ECMP paths is visible at a glance, which is the
point: the ISSUE-driving traffic-generation work (arXiv:2107.01398) calls
exactly these views the validation surface for large workloads.

Determinism: node positions come from a seeded spring layout, so the same
topology always renders the same picture and tests can assert on output.
"""

from __future__ import annotations

import html as _html
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import networkx as nx

from repro.obs.alerts import Alert
from repro.obs.telemetry import ComponentSeries, TelemetryPlane

if TYPE_CHECKING:  # pragma: no cover - obs must not import netsim at runtime
    from repro.netsim.topology import Topology

# The diff-report stylesheet (repro/core/diff/html.py), restated here
# because obs must not import core at module load (core's signature stack
# imports obs). Keep the two in sync when the palette changes.
_REPORT_STYLE = """
body { font-family: system-ui, sans-serif; margin: 2rem; color: #222; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 1.5rem; }
table { border-collapse: collapse; margin: 0.5rem 0; }
td, th { border: 1px solid #ccc; padding: 0.3rem 0.6rem; text-align: left; }
th { background: #f2f2f2; }
.healthy { color: #1a7f37; font-weight: 600; }
.problem { color: #b42318; font-weight: 600; }
.hint { background: #fff8e1; padding: 0.5rem 0.8rem; border-left: 3px solid #f4b400; }
.lit { background: #ffe0e0; font-weight: 600; text-align: center; }
.dark { color: #bbb; text-align: center; }
code { background: #f5f5f5; padding: 0 0.2rem; }
"""

#: Heat ramp anchors, shared with the diff-report palette: healthy green,
#: warning amber, problem red.
_RAMP: Tuple[Tuple[float, Tuple[int, int, int]], ...] = (
    (0.0, (0x1A, 0x7F, 0x37)),
    (0.5, (0xF4, 0xB4, 0x00)),
    (1.0, (0xB4, 0x23, 0x18)),
)

_EXTRA_STYLE = """
svg { background: #fafafa; border: 1px solid #ddd; }
.edge { stroke-linecap: round; }
.edge.drops { stroke-dasharray: 7 4; }
.edge.idle { stroke: #d8d8d8; }
.node-label { font-size: 11px; fill: #222; }
.legend { font-size: 0.85rem; color: #555; }
"""


def heat_color(value: float) -> str:
    """Map a normalized heat in [0, 1] onto the green-amber-red ramp."""
    v = min(1.0, max(0.0, value))
    for (lo, lo_rgb), (hi, hi_rgb) in zip(_RAMP, _RAMP[1:]):
        if v <= hi:
            f = (v - lo) / (hi - lo)
            rgb = tuple(
                round(a + (b - a) * f) for a, b in zip(lo_rgb, hi_rgb)
            )
            return "#{:02x}{:02x}{:02x}".format(*rgb)
    return "#{:02x}{:02x}{:02x}".format(*_RAMP[-1][1])


def _esc(text: object) -> str:
    return _html.escape(str(text), quote=True)


def _layout(
    topology: Topology, width: float, height: float, margin: float, seed: int
) -> Dict[str, Tuple[float, float]]:
    """Seeded spring-layout positions scaled into the SVG viewport."""
    pos = nx.spring_layout(topology.graph, seed=seed)
    xs = [p[0] for p in pos.values()]
    ys = [p[1] for p in pos.values()]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    return {
        node: (
            margin + (x - x_lo) / x_span * (width - 2 * margin),
            margin + (y - y_lo) / y_span * (height - 2 * margin),
        )
        for node, (x, y) in pos.items()
    }


def _link_series(
    plane: TelemetryPlane, edge: str
) -> Tuple[Optional[ComponentSeries], Optional[ComponentSeries]]:
    return (
        plane.get("link", edge, "utilization"),
        plane.get("link", edge, "drops"),
    )


def topology_heatmap_svg(
    topology: Topology,
    plane: TelemetryPlane,
    width: int = 960,
    height: int = 620,
    seed: int = 7,
) -> str:
    """Render the topology as an inline SVG heatmap.

    Every link element carries ``data-component="a--b"`` (sorted-endpoint
    edge naming, matching evidence chains) so reports and tests can find
    a specific link; lossy links additionally get the ``drops`` class and
    a dashed stroke, which is how an injected link fault is visibly
    marked even when its utilization stays moderate.
    """
    margin = 48.0
    pos = _layout(topology, float(width), float(height), margin, seed)
    out: List[str] = [
        f'<svg viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" xmlns="http://www.w3.org/2000/svg" '
        'role="img" aria-label="topology heatmap">'
    ]

    for link in sorted(topology.links(), key=lambda lk: lk.key()):
        a, b = link.key()
        edge = f"{a}--{b}"
        (xa, ya), (xb, yb) = pos[a], pos[b]
        util_series, drop_series = _link_series(plane, edge)
        heat = util_series.peak_value() / 0.95 if util_series else 0.0
        dropped = drop_series.total if drop_series else 0.0
        classes = ["edge"]
        if dropped > 0:
            classes.append("drops")
        if util_series is None:
            classes.append("idle")
        stroke = heat_color(heat) if util_series else "#d8d8d8"
        if not link.up:
            classes.append("down")
            stroke = "#b42318"
        stroke_width = 1.5 + 4.5 * min(1.0, heat)
        title = f"{edge}: peak util {heat * 0.95:.2f}, drops {dropped:g}"
        out.append(
            f'<g><line class="{" ".join(classes)}" '
            f'data-component="{_esc(edge)}" '
            f'x1="{xa:.1f}" y1="{ya:.1f}" x2="{xb:.1f}" y2="{yb:.1f}" '
            f'stroke="{stroke}" stroke-width="{stroke_width:.2f}">'
            f"<title>{_esc(title)}</title></line></g>"
        )

    occ_peak = {
        dpid: series.peak_value()
        for dpid in topology.switches()
        for series in (plane.get("switch", dpid, "flowtable_occupancy"),)
        if series is not None
    }
    occ_max = max(occ_peak.values(), default=0.0) or 1.0
    for node, (x, y) in sorted(pos.items()):
        if node in occ_peak or node in set(topology.switches()):
            heat = occ_peak.get(node, 0.0) / occ_max
            fill = heat_color(heat) if node in occ_peak else "#f2f2f2"
            title = f"{node}: peak table occupancy {occ_peak.get(node, 0.0):g}"
            out.append(
                f'<g><circle class="node switch" data-component="{_esc(node)}" '
                f'cx="{x:.1f}" cy="{y:.1f}" r="11" fill="{fill}" '
                f'stroke="#555" stroke-width="1">'
                f"<title>{_esc(title)}</title></circle>"
                f'<text class="node-label" x="{x + 13:.1f}" y="{y + 4:.1f}">'
                f"{_esc(node)}</text></g>"
            )
        else:
            out.append(
                f'<g><circle class="node host" data-component="{_esc(node)}" '
                f'cx="{x:.1f}" cy="{y:.1f}" r="4" fill="#ccc" stroke="#999" '
                f'stroke-width="0.5"><title>{_esc(node)}</title></circle></g>'
            )
    out.append("</svg>")
    return "\n".join(out)


def _series_table(plane: TelemetryPlane, kind: str, limit: int = 12) -> str:
    """An HTML table of one kind's series, worst component first."""
    by_component: Dict[str, Dict[str, ComponentSeries]] = {}
    metrics: List[str] = []
    for series in plane:
        if series.kind != kind:
            continue
        by_component.setdefault(series.component, {})[series.metric] = series
        if series.metric not in metrics:
            metrics.append(series.metric)
    if not by_component:
        return ""
    ranked = sorted(
        by_component,
        key=lambda c: (-sum(s.peak_value() for s in by_component[c].values()), c),
    )
    out = [f"<h2>{_esc(kind)} telemetry</h2><table>"]
    out.append(
        "<tr><th>component</th>"
        + "".join(f"<th>{_esc(m)}</th>" for m in metrics)
        + "</tr>"
    )
    for component in ranked[:limit]:
        cells = [f"<td><code>{_esc(component)}</code></td>"]
        for metric in metrics:
            series = by_component[component].get(metric)
            if series is None or series.count == 0:
                cells.append("<td class='dark'>-</td>")
            elif series.counter:
                cells.append(
                    f"<td>{series.total:g} (peak {series.peak_value():g}/win)</td>"
                )
            else:
                peak = series.peak_window()
                p95 = peak.p95 if peak else series.last
                cells.append(
                    f"<td>last {series.last:.4g} &middot; p95 {p95:.4g} "
                    f"&middot; max {series.vmax:.4g}</td>"
                )
        out.append("<tr>" + "".join(cells) + "</tr>")
    if len(ranked) > limit:
        out.append(
            f"<tr><td class='dark' colspan='{len(metrics) + 1}'>"
            f"... and {len(ranked) - limit} more</td></tr>"
        )
    out.append("</table>")
    return "\n".join(out)


def heatmap_to_html(
    topology: Topology,
    plane: TelemetryPlane,
    alerts: Optional[List[Alert]] = None,
    title: str = "Telemetry heatmap",
    seed: int = 7,
) -> str:
    """Render the full heatmap report: SVG, legend, tables, alerts."""
    summary = plane.summary()
    out: List[str] = [
        "<!DOCTYPE html>",
        "<html><head><meta charset='utf-8'>",
        f"<title>{_esc(title)}</title>",
        f"<style>{_REPORT_STYLE}{_EXTRA_STYLE}</style>",
        "</head><body>",
        f"<h1>{_esc(title)}</h1>",
        f"<p>{summary['series']} series &middot; {summary['samples']} samples "
        f"&middot; {summary['window_s']:g}s windows "
        f"(ring capacity {summary['capacity']})</p>",
        topology_heatmap_svg(topology, plane, seed=seed),
        "<p class='legend'>link color: peak utilization "
        f"(<span style='color:{heat_color(0.0)}'>idle</span> &rarr; "
        f"<span style='color:{heat_color(0.5)}'>busy</span> &rarr; "
        f"<span style='color:{heat_color(1.0)}'>saturated</span>); "
        "dashed = packet drops observed; switch fill: table pressure.</p>",
    ]
    if alerts:
        out.append("<h2>Telemetry alerts</h2><table>")
        out.append(
            "<tr><th>t (s)</th><th>rule</th><th>severity</th><th>message</th></tr>"
        )
        for alert in alerts[:20]:
            out.append(
                f"<tr><td>{alert.timestamp:g}</td><td>{_esc(alert.rule)}</td>"
                f"<td class='{'problem' if alert.severity >= 2 else ''}'>"
                f"{_esc(alert.severity)}</td>"
                f"<td>{_esc(alert.message)}</td></tr>"
            )
        if len(alerts) > 20:
            out.append(
                f"<tr><td class='dark' colspan='4'>... and "
                f"{len(alerts) - 20} more</td></tr>"
            )
        out.append("</table>")
    for kind in ("link", "switch", "controller", "app", "host"):
        table = _series_table(plane, kind)
        if table:
            out.append(table)
    out.append("</body></html>")
    return "\n".join(out)


def save_heatmap(
    path: str,
    topology: Topology,
    plane: TelemetryPlane,
    alerts: Optional[List[Alert]] = None,
    title: str = "Telemetry heatmap",
    seed: int = 7,
) -> None:
    """Write the heatmap report to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(heatmap_to_html(topology, plane, alerts=alerts, title=title, seed=seed))
