"""Streaming alerts over sliding-diagnoser windows and metric series.

The :class:`~repro.core.monitor.SlidingDiagnoser` turns a live capture
into a stream of :class:`WindowReport`-shaped verdicts; this module turns
that stream (plus any metric time series) into operator alerts the moment
the diagnoser goes unhealthy, instead of waiting for someone to read a
report. Rules are deliberately simple and composable:

* :class:`ThresholdRule` — a metric crossed a fixed bound;
* :class:`EwmaDriftRule` — a metric drifted more than ``k`` sigmas from
  its exponentially-weighted mean (catches slow degradations a fixed
  threshold misses);
* :class:`UnhealthyWindowsRule` — ``n`` consecutive diagnoser windows
  reported unexplained changes (the paper's "compare against a stable,
  correct behavior" loop, alarmed);
* :class:`ProblemClassRule` — a specific inferred problem class (e.g.
  ``network_disconnectivity``, ``unauthorized_access``) appeared.

The engine adds the operational layer: severity levels, per-(rule, labels)
dedup with a cooldown so a sustained fault does not page once per window,
JSONL export for pipelines, and counters in a
:class:`~repro.obs.metrics.MetricsRegistry` so alert volume itself is
scrape-able via the Prometheus renderer.

Alert timestamps are *stream* timestamps (simulation/capture time — the
window end or the metric sample time), never wall clock, so alerts align
with the log they were derived from.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    List,
    Optional,
    TextIO,
    Tuple,
    Union,
)

from repro.obs.metrics import NOOP_REGISTRY, Counter, Gauge, MetricsRegistry
from repro.obs.telemetry import TelemetryPlane

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (monitor imports obs)
    from repro.core.monitor import WindowReport


class Severity(enum.IntEnum):
    """Alert severity; comparable (CRITICAL > WARNING > INFO)."""

    INFO = 0
    WARNING = 1
    CRITICAL = 2

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Alert:
    """One fired alert.

    Attributes:
        rule: name of the rule that fired.
        severity: alert severity.
        timestamp: stream time (window end / sample time), not wall clock.
        message: operator-facing description.
        value: the observation that tripped the rule.
        labels: extra dimensions (metric name, problem class, ...).
    """

    rule: str
    severity: Severity
    timestamp: float
    message: str
    value: float = 0.0
    labels: Tuple[Tuple[str, str], ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": "alert",
            "rule": self.rule,
            "severity": str(self.severity),
            "timestamp": self.timestamp,
            "message": self.message,
            "value": self.value,
            "labels": dict(self.labels),
        }


def metric_matches(watched: str, sample_name: str) -> bool:
    """Whether the sample stream ``sample_name`` falls under ``watched``.

    Exact match, or — when ``watched`` carries no label set of its own —
    any labeled variant ``watched{k=v,...}``. This is what lets one rule
    watch a whole telemetry family (every link's utilization) while a
    labeled rule pins a single component.
    """
    return sample_name == watched or (
        "{" not in watched and sample_name.startswith(watched + "{")
    )


class AlertRule:
    """Base rule: subclasses override one (or both) observe hooks.

    Attributes:
        name: rule identity (used for dedup).
        severity: severity of alerts this rule emits.
        cooldown: seconds of stream time after a firing during which the
            same (rule, labels) pair stays silent. 0 disables dedup.
    """

    def __init__(
        self, name: str, severity: Severity = Severity.WARNING, cooldown: float = 0.0
    ) -> None:
        self.name = name
        self.severity = severity
        self.cooldown = cooldown

    def observe_window(self, report: "WindowReport") -> List[Alert]:
        """React to one diagnoser window; return alerts to fire."""
        return []

    def observe_metric(self, name: str, value: float, at: float) -> List[Alert]:
        """React to one metric sample; return alerts to fire."""
        return []

    def _alert(
        self,
        at: float,
        message: str,
        value: float = 0.0,
        **labels: str,
    ) -> Alert:
        return Alert(
            rule=self.name,
            severity=self.severity,
            timestamp=at,
            message=message,
            value=value,
            labels=tuple(sorted((k, str(v)) for k, v in labels.items())),
        )


class ThresholdRule(AlertRule):
    """Fire when a named metric crosses a fixed bound.

    Args:
        metric: metric name to watch (as fed to the engine). A bare name
            also matches every labeled variant of itself — the engine
            feeds registry and telemetry samples as ``name{k=v,...}``, so
            ``telemetry_link_utilization`` watches *all* links while
            ``telemetry_link_utilization{component=a--b}`` pins one.
        threshold: the bound.
        op: ``">"``, ``">="``, ``"<"``, or ``"<="``.
    """

    _OPS = {
        ">": lambda v, t: v > t,
        ">=": lambda v, t: v >= t,
        "<": lambda v, t: v < t,
        "<=": lambda v, t: v <= t,
    }

    def __init__(
        self,
        metric: str,
        threshold: float,
        op: str = ">",
        severity: Severity = Severity.WARNING,
        cooldown: float = 0.0,
        name: Optional[str] = None,
    ) -> None:
        if op not in self._OPS:
            raise ValueError(f"unknown op {op!r}; choices: {sorted(self._OPS)}")
        super().__init__(
            name or f"threshold:{metric}{op}{threshold:g}", severity, cooldown
        )
        self.metric = metric
        self.threshold = threshold
        self.op = op

    def observe_metric(self, name: str, value: float, at: float) -> List[Alert]:
        if not metric_matches(self.metric, name) or not self._OPS[self.op](
            value, self.threshold
        ):
            return []
        return [
            self._alert(
                at,
                f"{name} = {value:g} ({self.op} {self.threshold:g})",
                value=value,
                metric=name,
            )
        ]


class EwmaDriftRule(AlertRule):
    """Fire when a metric drifts ``k`` sigmas from its EWMA.

    Maintains an exponentially weighted mean and variance per metric
    sample stream — each labeled variant (``name{component=...}``) gets
    its own independent baseline, so one rule can watch a telemetry
    family without cross-contaminating per-component statistics. After
    ``warmup`` samples, a value further than ``k * sqrt(var)`` (and at
    least ``min_delta``) from the stream's mean alerts. The tripping
    sample still updates the EWMA, so a new steady state eventually stops
    alerting — drift detection, not threshold pinning.
    """

    def __init__(
        self,
        metric: str,
        alpha: float = 0.3,
        k: float = 3.0,
        warmup: int = 3,
        min_delta: float = 0.0,
        severity: Severity = Severity.WARNING,
        cooldown: float = 0.0,
        name: Optional[str] = None,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        super().__init__(name or f"ewma-drift:{metric}", severity, cooldown)
        self.metric = metric
        self.alpha = alpha
        self.k = k
        self.warmup = max(1, warmup)
        self.min_delta = min_delta
        #: Per-sample-stream [mean, var, n] state.
        self._state: Dict[str, List[float]] = {}

    def observe_metric(self, name: str, value: float, at: float) -> List[Alert]:
        if not metric_matches(self.metric, name):
            return []
        fired: List[Alert] = []
        state = self._state.get(name)
        if state is None:
            self._state[name] = [value, 0.0, 1.0]
            return fired
        mean, var, n = state
        delta = value - mean
        sigma = var ** 0.5
        if n >= self.warmup and abs(delta) > max(self.k * sigma, self.min_delta):
            fired.append(
                self._alert(
                    at,
                    f"{name} drifted to {value:g} "
                    f"(ewma {mean:g}, sigma {sigma:g})",
                    value=value,
                    metric=name,
                    direction="up" if delta > 0 else "down",
                )
            )
        # Standard EWM mean/variance update (West 1979 form).
        incr = self.alpha * delta
        state[0] = mean + incr
        state[1] = (1.0 - self.alpha) * (var + delta * incr)
        state[2] = n + 1.0
        return fired


class UnhealthyWindowsRule(AlertRule):
    """Fire after ``n`` consecutive unhealthy diagnoser windows."""

    def __init__(
        self,
        consecutive: int = 1,
        severity: Severity = Severity.WARNING,
        cooldown: float = 0.0,
        name: Optional[str] = None,
    ) -> None:
        if consecutive < 1:
            raise ValueError(f"consecutive must be >= 1, got {consecutive}")
        super().__init__(
            name or f"unhealthy-windows:{consecutive}", severity, cooldown
        )
        self.consecutive = consecutive
        self._streak = 0

    def observe_window(self, report: "WindowReport") -> List[Alert]:
        if report.healthy:
            self._streak = 0
            return []
        self._streak += 1
        if self._streak < self.consecutive:
            return []
        changes = len(report.report.unknown_changes)
        return [
            self._alert(
                report.t_end,
                f"{self._streak} consecutive unhealthy window(s); "
                f"{changes} unexplained change(s) in "
                f"[{report.t_start:g}, {report.t_end:g})s",
                value=float(changes),
                streak=str(self._streak),
            )
        ]


class ProblemClassRule(AlertRule):
    """Fire when the diagnoser infers a specific problem class.

    Args:
        problems: classes that alert; None means any inferred problem.
    """

    def __init__(
        self,
        problems: Optional[Iterable[str]] = None,
        severity: Severity = Severity.CRITICAL,
        cooldown: float = 0.0,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name or "problem-class", severity, cooldown)
        self.problems = frozenset(problems) if problems is not None else None

    def observe_window(self, report: "WindowReport") -> List[Alert]:
        fired = []
        for inference in report.report.problems:
            if self.problems is not None and inference.problem not in self.problems:
                continue
            suspects = ", ".join(
                c for c, _ in report.report.component_ranking[:3]
            )
            fired.append(
                self._alert(
                    report.t_end,
                    f"inferred {inference.problem} "
                    f"(score {inference.score:.2f}; suspects: {suspects or 'n/a'})",
                    value=inference.score,
                    problem=inference.problem,
                )
            )
        return fired


def default_rules(
    consecutive_critical: int = 3, cooldown: float = 0.0
) -> List[AlertRule]:
    """The stock rule set ``repro monitor`` uses.

    One WARNING on any unhealthy window, an escalation to CRITICAL when
    the condition persists, and a CRITICAL per inferred problem class.
    """
    return [
        UnhealthyWindowsRule(1, severity=Severity.WARNING, cooldown=cooldown),
        UnhealthyWindowsRule(
            consecutive_critical, severity=Severity.CRITICAL, cooldown=cooldown
        ),
        ProblemClassRule(cooldown=cooldown),
    ]


def telemetry_rules(
    utilization_threshold: float = 0.9,
    reply_latency_threshold: float = 0.25,
    cooldown: float = 0.0,
) -> List[AlertRule]:
    """The stock data-plane rule set layered over telemetry windows.

    A hot-link threshold (any link whose in-window peak utilization
    crosses ``utilization_threshold``), per-link drop-rate drift (the
    Figure 9 ``tc`` loss fault seen from the data plane), RPC-latency
    drift per application, and a controller reply-latency ceiling.
    """
    return [
        ThresholdRule(
            "telemetry_link_utilization_max",
            utilization_threshold,
            severity=Severity.WARNING,
            cooldown=cooldown,
            name="telemetry:hot-link",
        ),
        EwmaDriftRule(
            "telemetry_link_drops",
            warmup=2,
            min_delta=0.5,
            severity=Severity.WARNING,
            cooldown=cooldown,
            name="telemetry:drop-drift",
        ),
        EwmaDriftRule(
            "telemetry_app_rpc_latency",
            warmup=3,
            min_delta=0.01,
            severity=Severity.WARNING,
            cooldown=cooldown,
            name="telemetry:rpc-latency-drift",
        ),
        ThresholdRule(
            "telemetry_controller_reply_latency_max",
            reply_latency_threshold,
            severity=Severity.CRITICAL,
            cooldown=cooldown,
            name="telemetry:controller-slow",
        ),
    ]


class AlertEngine:
    """Evaluate rules over window/metric streams with dedup and export.

    Args:
        rules: the rule set (may be extended later via :meth:`add_rule`).
        metrics: registry receiving ``alerts_total{rule=,severity=}``
            counters and the ``alerts_last_fired_timestamp`` gauge, so
            alert volume rides the normal Prometheus/JSONL export path.
    """

    def __init__(
        self,
        rules: Optional[Iterable[AlertRule]] = None,
        metrics: MetricsRegistry = NOOP_REGISTRY,
    ) -> None:
        self.rules: List[AlertRule] = list(rules or [])
        self.alerts: List[Alert] = []
        self.suppressed = 0
        self.metrics = metrics
        self._m_last = metrics.gauge("alerts_last_fired_timestamp")
        self._m_by_rule: Dict[Tuple[str, str], Union[Counter, Gauge]] = {}
        self._last_fired: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}
        #: Per-telemetry-series cursor: end time of the last window fed,
        #: so repeated :meth:`observe_telemetry` calls stream only new
        #: windows (robust to ring eviction — evicted windows are simply
        #: never seen, which keeps the engine O(new windows) per call).
        self._telemetry_cursor: Dict[Tuple[str, str, str], float] = {}

    def add_rule(self, rule: AlertRule) -> None:
        self.rules.append(rule)

    # -- stream inputs --------------------------------------------------

    def observe_window(self, report: "WindowReport") -> List[Alert]:
        """Feed one diagnoser window through every rule."""
        fired: List[Alert] = []
        for rule in self.rules:
            for alert in rule.observe_window(report):
                fired.extend(self._admit(rule, alert))
        return fired

    def observe_metric(self, name: str, value: float, at: float) -> List[Alert]:
        """Feed one metric sample through every rule."""
        fired: List[Alert] = []
        for rule in self.rules:
            for alert in rule.observe_metric(name, value, at):
                fired.extend(self._admit(rule, alert))
        return fired

    def observe_registry(self, registry: MetricsRegistry, at: float) -> List[Alert]:
        """Feed every scalar instrument of a registry as samples at ``at``.

        Histograms contribute their count and mean under ``<name>_count``
        and ``<name>_mean`` so latency rules can target either.
        """
        fired: List[Alert] = []
        for metric in registry:
            label_text = ",".join(f"{k}={v}" for k, v in metric.labels)
            key = f"{metric.name}{{{label_text}}}" if label_text else metric.name
            if isinstance(metric, (Counter, Gauge)):
                fired.extend(self.observe_metric(key, metric.value, at))
            else:
                fired.extend(self.observe_metric(f"{key}_count", float(metric.count), at))
                fired.extend(self.observe_metric(f"{key}_mean", metric.mean, at))
        return fired

    def observe_telemetry(self, plane: TelemetryPlane) -> List[Alert]:
        """Feed every newly closed telemetry window through the rules.

        Each window becomes labeled samples at its end time, named like
        registry streams so the same rule grammar applies:

        * level series — ``name{component=c}`` (window mean) plus
          ``name_p95{...}`` and ``name_max{...}``;
        * counter series — ``name{component=c}`` (window sum) plus
          ``name_rate{...}`` (sum over window length).

        Call it repeatedly on a live plane: a per-series cursor ensures
        each window is fed exactly once.
        """
        fired: List[Alert] = []
        for series in plane:
            key = (series.kind, series.component, series.metric)
            cursor = self._telemetry_cursor.get(key, float("-inf"))
            stream = f"{series.name}{{component={series.component}}}"
            for window in series.closed_windows():
                if window.t_end <= cursor:
                    continue
                cursor = window.t_end
                at = window.t_end
                if series.counter:
                    fired.extend(self.observe_metric(stream, window.total, at))
                    fired.extend(
                        self.observe_metric(
                            f"{series.name}_rate{{component={series.component}}}",
                            window.rate(),
                            at,
                        )
                    )
                else:
                    fired.extend(self.observe_metric(stream, window.mean, at))
                    fired.extend(
                        self.observe_metric(
                            f"{series.name}_p95{{component={series.component}}}",
                            window.p95,
                            at,
                        )
                    )
                    fired.extend(
                        self.observe_metric(
                            f"{series.name}_max{{component={series.component}}}",
                            window.vmax,
                            at,
                        )
                    )
            self._telemetry_cursor[key] = cursor
        return fired

    # -- dedup / bookkeeping --------------------------------------------

    def _admit(self, rule: AlertRule, alert: Alert) -> List[Alert]:
        key = (alert.rule, alert.labels)
        if rule.cooldown > 0:
            last = self._last_fired.get(key)
            if last is not None and alert.timestamp - last < rule.cooldown:
                self.suppressed += 1
                return []
        self._last_fired[key] = alert.timestamp
        self.alerts.append(alert)
        counter_key = (alert.rule, str(alert.severity))
        counter = self._m_by_rule.get(counter_key)
        if counter is None:
            counter = self.metrics.counter(
                "alerts_total", rule=alert.rule, severity=str(alert.severity)
            )
            self._m_by_rule[counter_key] = counter
        counter.inc()
        self._m_last.set(alert.timestamp)
        return [alert]

    # -- introspection / export -----------------------------------------

    def by_severity(self, severity: Severity) -> List[Alert]:
        return [a for a in self.alerts if a.severity == severity]

    def worst_severity(self) -> Optional[Severity]:
        return max((a.severity for a in self.alerts), default=None)

    def first_alert_at(self) -> Optional[float]:
        """Earliest alert timestamp — detection-delay measurements."""
        return min((a.timestamp for a in self.alerts), default=None)

    def write_jsonl(self, destination: Union[str, TextIO]) -> int:
        """Append-friendly JSONL export of every fired alert."""
        return write_alerts_jsonl(self.alerts, destination)


def write_alerts_jsonl(
    alerts: Iterable[Alert], destination: Union[str, TextIO]
) -> int:
    """Write alerts as one JSON object per line; returns the line count."""
    rows = [a.to_dict() for a in alerts]
    if isinstance(destination, str):
        with open(destination, "w", encoding="utf-8") as fh:
            for row in rows:
                fh.write(json.dumps(row) + "\n")
    else:
        for row in rows:
            destination.write(json.dumps(row) + "\n")
    return len(rows)


def read_alerts_jsonl(source: Union[str, TextIO]) -> List[Alert]:
    """Parse a JSONL alert stream back into :class:`Alert` records."""
    if isinstance(source, str):
        with open(source, encoding="utf-8") as fh:
            text = fh.read()
    else:
        text = source.read()
    alerts: List[Alert] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"bad alert JSON on line {lineno}: {exc}") from exc
        alerts.append(
            Alert(
                rule=data["rule"],
                severity=Severity[data["severity"].upper()],
                timestamp=data["timestamp"],
                message=data.get("message", ""),
                value=data.get("value", 0.0),
                labels=tuple(sorted(data.get("labels", {}).items())),
            )
        )
    return alerts
