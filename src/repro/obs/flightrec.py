"""The per-flow causal flight recorder: reconstruct event chains from a log.

FlowDiff's aggregate signature diffs tell an operator *that* behavior
changed; the flight recorder tells them *what one flow experienced*. Every
flow instance injected into the simulated network carries a correlation id
(:attr:`~repro.openflow.messages.ControlMessage.corr_id`) stamped onto the
PacketIn raised at each switch hop, the FlowMod/PacketOut replies, and the
eventual FlowRemoved. Reconstruction turns one capture into per-flow
timelines::

    trigger packet -> controller decision -> per-switch rule installs
                   -> forwarding hops -> expiry

with per-stage latencies, in the spirit of 007's per-flow evidence chains
(Arzani et al.) layered over the paper's controller-side capture.

Captures from controllers that do not stamp correlation ids (old files,
Ryu ingests) degrade gracefully: messages are grouped heuristically by
flow 5-tuple and occurrence gap, yielding synthetic (negative) ids.
Dropped or reordered control messages never abort reconstruction — the
resulting timeline simply reports itself incomplete or non-monotone,
which is itself diagnostic signal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.occurrence import splits_occurrence
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.openflow.log import ControllerLog
from repro.openflow.match import FlowKey, Match
from repro.openflow.messages import (
    ControlMessage,
    FlowMod,
    FlowRemoved,
    FlowStatsReply,
    PacketIn,
    PacketOut,
)

#: Heuristic correlation: two occurrences of the same 5-tuple further apart
#: than this are distinct flow instances. Generous enough to keep a flow's
#: FlowRemoved (idle timeout + sweep period after the last packet) attached.
DEFAULT_OCCURRENCE_GAP = 10.0

#: Stage ordering used to break timestamp ties into causal order.
_STAGE_ORDER = {
    "packet_in": 0,
    "flow_mod": 1,
    "packet_out": 2,
    "flow_stats": 3,
    "flow_removed": 4,
}


@dataclass(frozen=True)
class TimelineEvent:
    """One stage of a flow's causal chain.

    Attributes:
        timestamp: controller-side time of the stage.
        stage: ``packet_in`` | ``flow_mod`` | ``packet_out`` |
            ``flow_stats`` | ``flow_removed``.
        dpid: switch the stage concerns.
        detail: human-readable stage specifics (ports, counters, reason).
        latency: seconds since the previous event in the timeline
            (0 for the first event; negative when the capture is reordered).
    """

    timestamp: float
    stage: str
    dpid: str
    detail: str
    latency: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "t": self.timestamp,
            "stage": self.stage,
            "dpid": self.dpid,
            "detail": self.detail,
            "latency_s": self.latency,
        }


@dataclass
class FlowTimeline:
    """The reconstructed causal chain of one flow instance.

    Attributes:
        corr_id: the correlation id (negative for heuristically grouped
            flows from captures without ids).
        flow: the flow 5-tuple, when any message carried one.
        events: the chain, sorted by (timestamp, causal stage order).
        synthetic: True when the grouping was heuristic, not id-based.
        annotations: occupancy/queue context sampled from a metrics
            registry (flow-table occupancy per hop, controller load).
    """

    corr_id: int
    flow: Optional[FlowKey] = None
    events: List[TimelineEvent] = field(default_factory=list)
    synthetic: bool = False
    annotations: Dict[str, float] = field(default_factory=dict)

    # -- chain structure ------------------------------------------------

    @property
    def t_start(self) -> float:
        return self.events[0].timestamp if self.events else 0.0

    @property
    def t_end(self) -> float:
        return self.events[-1].timestamp if self.events else 0.0

    @property
    def hops(self) -> Tuple[str, ...]:
        """Switches traversed, in PacketIn order (all dpids as fallback)."""
        seen: List[str] = []
        for event in self.events:
            if event.stage == "packet_in" and event.dpid not in seen:
                seen.append(event.dpid)
        if not seen:
            for event in self.events:
                if event.dpid not in seen:
                    seen.append(event.dpid)
        return tuple(seen)

    @property
    def complete(self) -> bool:
        """Trigger, decision, and expiry all present in the chain."""
        stages = {e.stage for e in self.events}
        return {"packet_in", "flow_mod", "flow_removed"} <= stages

    @property
    def monotone(self) -> bool:
        """Causal order is consistent with the timestamps.

        Events are stored timestamp-sorted, so a plain nondecreasing check
        would always pass; what a skewed or reordered capture breaks is
        *causality*: a hop's FlowMod timestamped before the PacketIn that
        triggered it, or an expiry before the chain's trigger.
        """
        first_in: Dict[str, float] = {}
        for event in self.events:
            if event.stage == "packet_in" and event.dpid not in first_in:
                first_in[event.dpid] = event.timestamp
        trigger = min(first_in.values()) if first_in else None
        for event in self.events:
            if event.stage == "flow_mod" and event.dpid in first_in:
                if event.timestamp < first_in[event.dpid]:
                    return False
            elif event.stage == "flow_removed" and trigger is not None:
                if event.timestamp < trigger:
                    return False
        return True

    @property
    def dropped_stages(self) -> Tuple[str, ...]:
        """Expected-but-missing stages — the gaps in the chain."""
        stages = {e.stage for e in self.events}
        return tuple(
            s for s in ("packet_in", "flow_mod", "flow_removed") if s not in stages
        )

    def stage_events(self, stage: str) -> List[TimelineEvent]:
        return [e for e in self.events if e.stage == stage]

    def controller_latencies(self) -> List[float]:
        """Per-hop PacketIn -> FlowMod service latencies, in hop order."""
        out: List[float] = []
        pending: Dict[str, float] = {}
        for event in self.events:
            if event.stage == "packet_in":
                pending[event.dpid] = event.timestamp
            elif event.stage == "flow_mod" and event.dpid in pending:
                out.append(event.timestamp - pending.pop(event.dpid))
        return out

    @property
    def total_latency(self) -> float:
        """First-event to last-install latency (setup portion of the chain).

        Falls back to the whole span when no FlowMod is present.
        """
        mods = self.stage_events("flow_mod")
        if mods:
            return mods[-1].timestamp - self.t_start
        return self.t_end - self.t_start

    # -- rendering ------------------------------------------------------

    def describe(self) -> str:
        """The one-line summary used in listings and evidence chains."""
        flow = str(self.flow) if self.flow is not None else "<unknown flow>"
        state = "complete" if self.complete else (
            "missing " + "+".join(self.dropped_stages)
        )
        order = "" if self.monotone else ", REORDERED"
        tag = "~" if self.synthetic else ""
        return (
            f"corr={tag}{self.corr_id} {flow}: {len(self.events)} events, "
            f"{len(self.hops)} hop(s) [{'>'.join(self.hops)}], {state}{order}"
        )

    def render(self) -> str:
        """A multi-line, operator-facing timeline."""
        lines = [self.describe()]
        for event in self.events:
            lines.append(
                f"  {event.timestamp:12.6f}s  {event.stage:<12} "
                f"{event.dpid:<8} +{event.latency * 1e3:8.3f}ms  {event.detail}"
            )
        crts = self.controller_latencies()
        if crts:
            mean_ms = sum(crts) / len(crts) * 1e3
            lines.append(
                f"  controller decisions: {len(crts)}, mean {mean_ms:.3f}ms, "
                f"setup total {self.total_latency * 1e3:.3f}ms"
            )
        for key, value in sorted(self.annotations.items()):
            lines.append(f"  sample {key} = {value:g}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-able representation (what ``repro trace --json`` emits)."""
        return {
            "corr_id": self.corr_id,
            "flow": str(self.flow) if self.flow is not None else None,
            "synthetic": self.synthetic,
            "complete": self.complete,
            "monotone": self.monotone,
            "dropped_stages": list(self.dropped_stages),
            "hops": list(self.hops),
            "t_start": self.t_start,
            "t_end": self.t_end,
            "setup_latency_s": self.total_latency,
            "controller_latencies_s": self.controller_latencies(),
            "events": [e.to_dict() for e in self.events],
            "annotations": dict(self.annotations),
        }


# ----------------------------------------------------------------------
# Reconstruction
# ----------------------------------------------------------------------


def _message_flow(msg: ControlMessage) -> Optional[FlowKey]:
    """The flow identity a message carries, if recoverable."""
    if isinstance(msg, (PacketIn, PacketOut)):
        return msg.flow
    if isinstance(msg, (FlowMod, FlowRemoved, FlowStatsReply)):
        match = msg.match
        if isinstance(match, Match) and match.is_microflow:
            return FlowKey(
                src=match.src,
                dst=match.dst,
                src_port=match.src_port,
                dst_port=match.dst_port,
                proto=match.proto or "tcp",
            )
    return None


def _stage_of(msg: ControlMessage) -> Optional[str]:
    if isinstance(msg, PacketIn):
        return "packet_in"
    if isinstance(msg, FlowMod):
        return "flow_mod"
    if isinstance(msg, PacketOut):
        return "packet_out"
    if isinstance(msg, FlowRemoved):
        return "flow_removed"
    if isinstance(msg, FlowStatsReply):
        return "flow_stats"
    return None


def _detail_of(msg: ControlMessage) -> str:
    if isinstance(msg, PacketIn):
        return f"table miss, in_port={msg.in_port}"
    if isinstance(msg, FlowMod):
        return (
            f"install out_port={msg.out_port} idle={msg.idle_timeout:g}s"
            + (f" reply_to=#{msg.in_reply_to}" if msg.in_reply_to is not None else "")
        )
    if isinstance(msg, PacketOut):
        return f"release buffered packet out_port={msg.out_port}"
    if isinstance(msg, FlowRemoved):
        return (
            f"expired ({msg.reason.value}) after {msg.duration:g}s, "
            f"{msg.byte_count}B/{msg.packet_count}pkt"
        )
    if isinstance(msg, FlowStatsReply):
        return f"counter poll: {msg.byte_count}B/{msg.packet_count}pkt"
    return type(msg).__name__


def _build_timeline(
    corr_id: int, messages: List[ControlMessage], synthetic: bool
) -> FlowTimeline:
    ordered = sorted(
        messages,
        key=lambda m: (m.timestamp, _STAGE_ORDER.get(_stage_of(m) or "", 9)),
    )
    flow = next(
        (f for f in (_message_flow(m) for m in ordered) if f is not None), None
    )
    timeline = FlowTimeline(corr_id=corr_id, flow=flow, synthetic=synthetic)
    prev: Optional[float] = None
    for msg in ordered:
        stage = _stage_of(msg)
        if stage is None:
            continue
        latency = 0.0 if prev is None else msg.timestamp - prev
        timeline.events.append(
            TimelineEvent(
                timestamp=msg.timestamp,
                stage=stage,
                dpid=msg.dpid,
                detail=_detail_of(msg),
                latency=latency,
            )
        )
        prev = msg.timestamp
    return timeline


def _annotate(timeline: FlowTimeline, metrics: MetricsRegistry) -> None:
    """Attach occupancy/queue context from a registry snapshot.

    The registry holds end-of-run occupancy state (flow-table entries per
    hop, controller load factor, response-latency distribution); attaching
    it here gives each chain the "how loaded was the machinery" context
    the ISSUE calls queue/occupancy counters.
    """
    for dpid in timeline.hops:
        gauge = metrics.get("flowtable_entries", dpid=dpid)
        if gauge is not None:
            timeline.annotations[f"flowtable_entries{{dpid={dpid}}}"] = float(
                gauge.value
            )
    load = metrics.get("controller_load_factor")
    if load is not None:
        timeline.annotations["controller_load_factor"] = float(load.value)
    response = metrics.get("controller_response_seconds")
    if isinstance(response, Histogram) and response.count:
        timeline.annotations["controller_response_mean_s"] = response.mean


def reconstruct(
    log: ControllerLog,
    metrics: Optional[MetricsRegistry] = None,
    occurrence_gap: float = DEFAULT_OCCURRENCE_GAP,
) -> List[FlowTimeline]:
    """Reconstruct every flow's causal timeline from a capture.

    Messages with correlation ids are grouped exactly; the remainder fall
    back to (5-tuple, occurrence-gap) grouping with synthetic negative ids.
    Returns timelines sorted by start time.

    Args:
        log: the controller capture.
        metrics: optional registry whose occupancy instruments annotate
            each timeline (see :func:`_annotate`).
        occurrence_gap: heuristic-mode split threshold in seconds.
    """
    by_corr: Dict[int, List[ControlMessage]] = {}
    loose: Dict[FlowKey, List[ControlMessage]] = {}
    for msg in log:
        if _stage_of(msg) is None:
            continue
        if msg.corr_id is not None:
            by_corr.setdefault(msg.corr_id, []).append(msg)
            continue
        flow = _message_flow(msg)
        if flow is None:
            continue
        loose.setdefault(flow, []).append(msg)

    timelines = [
        _build_timeline(cid, msgs, synthetic=False)
        for cid, msgs in by_corr.items()
    ]

    next_synthetic = -1
    for flow in sorted(loose, key=str):
        msgs = sorted(loose[flow], key=lambda m: m.timestamp)
        bucket: List[ControlMessage] = []
        for msg in msgs:
            if bucket and splits_occurrence(bucket[-1].timestamp, msg.timestamp, occurrence_gap):
                timelines.append(
                    _build_timeline(next_synthetic, bucket, synthetic=True)
                )
                next_synthetic -= 1
                bucket = []
            bucket.append(msg)
        if bucket:
            timelines.append(_build_timeline(next_synthetic, bucket, synthetic=True))
            next_synthetic -= 1

    if metrics is not None:
        for timeline in timelines:
            _annotate(timeline, metrics)
    timelines.sort(key=lambda t: (t.t_start, t.corr_id))
    return timelines


class FlightRecorder:
    """Convenience wrapper binding a capture to its reconstructed chains.

    >>> recorder = FlightRecorder.from_log(log)
    >>> recorder.timeline(corr_id=12).render()
    >>> [t for t in recorder.timelines if not t.complete]
    """

    def __init__(
        self, timelines: List[FlowTimeline], metrics: Optional[MetricsRegistry] = None
    ) -> None:
        self.timelines = timelines
        self.metrics = metrics
        self._by_id = {t.corr_id: t for t in timelines}

    @classmethod
    def from_log(
        cls,
        log: ControllerLog,
        metrics: Optional[MetricsRegistry] = None,
        occurrence_gap: float = DEFAULT_OCCURRENCE_GAP,
    ) -> "FlightRecorder":
        return cls(reconstruct(log, metrics, occurrence_gap), metrics=metrics)

    def __len__(self) -> int:
        return len(self.timelines)

    def timeline(self, corr_id: int) -> Optional[FlowTimeline]:
        """The chain for one correlation id, or None."""
        return self._by_id.get(corr_id)

    def for_flow(self, needle: str) -> List[FlowTimeline]:
        """Chains whose 5-tuple rendering contains ``needle``.

        ``needle`` may be a full ``src:port->dst:port/proto`` string or any
        substring of it (a host name, ``"->S8"``, a port, ...).
        """
        return [
            t
            for t in self.timelines
            if t.flow is not None and needle in str(t.flow)
        ]

    def for_component(self, component: str) -> List[FlowTimeline]:
        """Chains implicating a host, switch, or edge (``"a--b"``).

        A chain matches a switch when it traverses it, a host when the
        host is a flow endpoint, and an edge when it traverses both
        endpoints consecutively (or touches the endpoint, for host-switch
        edges).
        """
        out = []
        for t in self.timelines:
            if _timeline_touches(t, component):
                out.append(t)
        return out

    def incomplete(self) -> List[FlowTimeline]:
        """Chains with missing stages — the broken flows."""
        return [t for t in self.timelines if not t.complete]

    def summary(self) -> Dict[str, int]:
        """Counts handy for the CLI footer and tests."""
        return {
            "flows": len(self.timelines),
            "complete": sum(1 for t in self.timelines if t.complete),
            "incomplete": sum(1 for t in self.timelines if not t.complete),
            "synthetic": sum(1 for t in self.timelines if t.synthetic),
            "reordered": sum(1 for t in self.timelines if not t.monotone),
        }


def _timeline_touches(timeline: FlowTimeline, component: str) -> bool:
    hops = timeline.hops
    if component in hops:
        return True
    if timeline.flow is not None and component in timeline.flow.endpoints():
        return True
    if "--" in component:
        a, b = component.split("--", 1)
        for x, y in zip(hops, hops[1:]):
            if {x, y} == {a, b}:
                return True
        # Host--switch edges: the host side never appears as a hop.
        endpoints = timeline.flow.endpoints() if timeline.flow is not None else ()
        if (a in hops and b in endpoints) or (b in hops and a in endpoints):
            return True
    return False
