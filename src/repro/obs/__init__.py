"""``repro.obs`` — observability for the reproduction itself.

FlowDiff diagnoses a data center by passively watching its control plane;
this package applies the same discipline to our own stack. It is
dependency-free and designed so that the *default* (uninstrumented) path
costs nothing measurable:

* :mod:`repro.obs.metrics` — counters, gauges, fixed-bucket histograms in
  a :class:`MetricsRegistry`; :data:`NOOP_REGISTRY` is the universal
  do-nothing default.
* :mod:`repro.obs.tracing` — nestable wall-clock/sim-clock spans;
  :data:`NOOP_TRACER` likewise.
* :mod:`repro.obs.export` — JSONL event streams and Prometheus text
  exposition of a registry (plus round-trip readers).
* :mod:`repro.obs.stats` — one-pass controller-log summaries (message
  mix, rates, top talkers) behind ``repro stats``.
* :mod:`repro.obs.profile` — span trees rendered as the ``--profile``
  phase table and as benchmark-baseline timing dicts.
* :mod:`repro.obs.flightrec` — the per-flow causal flight recorder:
  reconstructs PacketIn -> FlowMod -> ... -> FlowRemoved timelines from a
  capture via correlation ids (heuristic 5-tuple grouping as fallback).
* :mod:`repro.obs.alerts` — streaming alert rules (threshold, EWMA drift,
  consecutive unhealthy windows, problem class) and the deduping
  :class:`AlertEngine` behind ``repro monitor``.
* :mod:`repro.obs.telemetry` — the data-plane telemetry plane: bounded
  per-component time series (link utilization/drops, table occupancy,
  controller latency, RPC latency) with ring-buffered window rollups;
  :data:`NOOP_TELEMETRY` is the do-nothing default.
* :mod:`repro.obs.heatmap` — self-contained HTML topology heatmaps of a
  telemetry plane (links by utilization/drops, switches by table
  pressure).
* :mod:`repro.obs.httpd` — the read-only ops HTTP endpoint
  (``/healthz``, ``/metrics``, ``/telemetry``, ``/alerts``, ``/runs``).
* :mod:`repro.obs.profiler` — the span-scoped function profiler: a
  tracer hook keeping one ``cProfile`` per open span, folding results
  into collapsed-stack format; off unless explicitly attached.
* :mod:`repro.obs.flamegraph` — deterministic, self-contained SVG
  flamegraphs of folded stacks (same input → byte-identical output).
* :mod:`repro.obs.ledger` — the append-only, content-addressed run
  ledger behind ``repro runs list|show|compare|gate``.

Typical instrumented run::

    from repro.obs import MetricsRegistry, Tracer

    metrics = MetricsRegistry()
    tracer = Tracer()
    fd = FlowDiff(config, metrics=metrics, tracer=tracer)
    report = fd.diff(fd.model(l1), fd.model(l2))
    print(render_phase_table(tracer))
    write_jsonl("telemetry.jsonl", metrics, tracer)
"""

from repro.obs.alerts import (
    Alert,
    AlertEngine,
    AlertRule,
    EwmaDriftRule,
    ProblemClassRule,
    Severity,
    ThresholdRule,
    UnhealthyWindowsRule,
    default_rules,
    metric_matches,
    read_alerts_jsonl,
    telemetry_rules,
    write_alerts_jsonl,
)
from repro.obs.export import (
    iter_metric_events,
    iter_span_events,
    metrics_from_events,
    read_jsonl,
    render_prometheus,
    write_jsonl,
)
from repro.obs.flamegraph import flamegraph_svg, parse_folded, save_flamegraph
from repro.obs.flightrec import (
    FlightRecorder,
    FlowTimeline,
    TimelineEvent,
    reconstruct,
)
from repro.obs.ledger import (
    GateResult,
    RunLedger,
    RunRecord,
    compare_records,
    gate_records,
)
from repro.obs.heatmap import heatmap_to_html, save_heatmap, topology_heatmap_svg
from repro.obs.httpd import ObsHTTPServer, ObsState
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    NOOP_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NoopRegistry,
)
from repro.obs.profile import phase_rows, phase_timings, render_phase_table
from repro.obs.profiler import (
    SpanProfiler,
    attach_profiler,
    deterministic_timer,
    reconcile_phases,
    render_function_table,
)
from repro.obs.telemetry import (
    NOOP_TELEMETRY,
    ComponentSeries,
    NoopTelemetry,
    TelemetryPlane,
    WindowStat,
    iter_telemetry_events,
    plane_from_events,
    render_tables,
    telemetry_registry,
)
from repro.obs.stats import (
    LogSummary,
    record_log_metrics,
    render_summary,
    summarize_log,
)
from repro.obs.tracing import NOOP_TRACER, NoopTracer, Span, Tracer

__all__ = [
    "DEFAULT_BUCKETS",
    "NOOP_REGISTRY",
    "NOOP_TELEMETRY",
    "NOOP_TRACER",
    "Alert",
    "AlertEngine",
    "AlertRule",
    "ComponentSeries",
    "Counter",
    "EwmaDriftRule",
    "FlightRecorder",
    "FlowTimeline",
    "Gauge",
    "GateResult",
    "Histogram",
    "LogSummary",
    "MetricsRegistry",
    "NoopRegistry",
    "NoopTelemetry",
    "NoopTracer",
    "ObsHTTPServer",
    "ObsState",
    "ProblemClassRule",
    "RunLedger",
    "RunRecord",
    "Severity",
    "Span",
    "SpanProfiler",
    "TelemetryPlane",
    "ThresholdRule",
    "TimelineEvent",
    "Tracer",
    "UnhealthyWindowsRule",
    "WindowStat",
    "attach_profiler",
    "compare_records",
    "default_rules",
    "deterministic_timer",
    "flamegraph_svg",
    "gate_records",
    "heatmap_to_html",
    "iter_metric_events",
    "iter_span_events",
    "iter_telemetry_events",
    "metric_matches",
    "metrics_from_events",
    "parse_folded",
    "phase_rows",
    "phase_timings",
    "plane_from_events",
    "read_alerts_jsonl",
    "read_jsonl",
    "reconcile_phases",
    "reconstruct",
    "render_function_table",
    "render_phase_table",
    "render_prometheus",
    "render_summary",
    "render_tables",
    "record_log_metrics",
    "save_flamegraph",
    "save_heatmap",
    "summarize_log",
    "telemetry_registry",
    "telemetry_rules",
    "topology_heatmap_svg",
    "write_alerts_jsonl",
    "write_jsonl",
]
