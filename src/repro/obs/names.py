"""Metric naming: the manifest and the Prometheus validity rules.

One module owns what a metric may be called. Three consumers share it:

* :mod:`repro.obs.metrics` validates names and label keys when an
  instrument is first created, so an invalid name fails at the
  registration site instead of surfacing as a malformed scrape later;
* :mod:`repro.obs.export` uses the same rules (and the shared
  label-value escaping) when rendering the text exposition format;
* the ``metric-names`` rule of :mod:`repro.qa` checks statically that
  every literal metric name in the source tree is valid **and** listed
  in :data:`KNOWN_METRICS` — the manifest below is the single place a
  new metric gets declared.

The name/label grammars are Prometheus's own (data model spec):
``[a-zA-Z_:][a-zA-Z0-9_:]*`` for metric names, ``[a-zA-Z_][a-zA-Z0-9_]*``
for label names, with ``__``-prefixed labels reserved for internal use.
"""

from __future__ import annotations

import re
from typing import FrozenSet

METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: The data-plane telemetry family: ``telemetry_<kind>_<metric>``, where
#: ``<kind>`` is a component family of :mod:`repro.obs.telemetry`. The
#: family is open-ended by metric (each sampled quantity mints a name at
#: runtime from its series key), so membership is grammatical rather than
#: enumerated — :func:`is_known_metric` accepts the whole family.
TELEMETRY_METRIC_RE = re.compile(
    r"^telemetry_(link|switch|controller|app|host)_[a-z][a-z0-9_]*$"
)

#: The performance-observatory family: ``profile_*`` (span-scoped
#: profiler, :mod:`repro.obs.profiler`) and ``runs_*`` (run ledger,
#: :mod:`repro.obs.ledger`). Like the telemetry family, membership is
#: grammatical — the observatory mints per-surface names (spans
#: profiled, records appended/skipped, gates evaluated) without a
#: manifest edit per instrument.
PROFILE_METRIC_RE = re.compile(r"^(profile|runs)_[a-z][a-z0-9_]*$")

#: The streaming-service family: ``service_*`` — ingest volume and rate,
#: queue depth, drop accounting, tenant population, window/merge
#: outcomes, report latency, checkpoint age (:mod:`repro.service`).
#: Grammatical like the telemetry and observatory families: the daemon
#: mints per-tenant instruments (the tenant rides in a label, never in
#: the name) without a manifest edit per instrument.
SERVICE_METRIC_RE = re.compile(r"^service_[a-z][a-z0-9_]*$")

#: Every metric the reproduction emits, by subsystem. The ``metric-names``
#: lint rule fails the build when a source file registers a name missing
#: here — add the name (keep the subsystem grouping) in the same change
#: that introduces the instrument.
KNOWN_METRICS: FrozenSet[str] = frozenset(
    {
        # netsim engine
        "sim_events_total",
        "sim_queue_depth",
        "sim_callback_seconds",
        # openflow controller + flow tables
        "controller_messages_total",
        "controller_unroutable_total",
        "controller_dead_misses_total",
        "controller_response_seconds",
        "controller_load_factor",
        "flowtable_lookups_total",
        "flowtable_misses_total",
        "flowtable_installs_total",
        "flowtable_expired_total",
        "flowtable_entries",
        # capture/log summaries
        "log_messages_total",
        "log_messages",
        "log_span_seconds",
        # FlowDiff pipeline
        "flowdiff_models_total",
        "flowdiff_diffs_total",
        "flowdiff_changes_total",
        "flowdiff_shard_seconds",
        "flowdiff_merge_seconds",
        "flowdiff_parallel_shards_total",
        "flowdiff_parallel_fallback_total",
        "flowdiff_cache_total",
        # sliding monitor + alerting
        "monitor_window_seconds",
        "monitor_windows_total",
        "monitor_unhealthy_windows_total",
        "monitor_last_window_healthy",
        "monitor_healthy_streak",
        "alerts_total",
        "alerts_last_fired_timestamp",
    }
)

#: Label keys the manifest blesses. Kept small on purpose: a label is a
#: cardinality commitment, so new keys are added here deliberately.
#: ``component`` and ``stat`` belong to the telemetry family: the sampled
#: component's identity (dpid, ``a--b`` edge, app name) and which window
#: statistic a gauge carries (``last``/``mean``/``p95``/``min``/``max``).
#: ``tenant`` belongs to the service family: one monitored environment of
#: the streaming daemon (cardinality = the handful of environments one
#: process watches, fixed at startup).
KNOWN_LABELS: FrozenSet[str] = frozenset(
    {
        "kind",
        "role",
        "status",
        "reason",
        "rule",
        "severity",
        "component",
        "stat",
        "tenant",
    }
)


def is_valid_metric_name(name: str) -> bool:
    """Whether ``name`` is a legal Prometheus metric name."""
    return bool(METRIC_NAME_RE.match(name))


def is_known_metric(name: str) -> bool:
    """Whether ``name`` is declared: listed in the manifest, or a member
    of a grammatical family (``telemetry_*``, ``profile_*``/``runs_*``,
    ``service_*``)."""
    return (
        name in KNOWN_METRICS
        or bool(TELEMETRY_METRIC_RE.match(name))
        or bool(PROFILE_METRIC_RE.match(name))
        or bool(SERVICE_METRIC_RE.match(name))
    )


def is_valid_label_name(name: str) -> bool:
    """Whether ``name`` is a legal, non-reserved Prometheus label name."""
    return bool(LABEL_NAME_RE.match(name)) and not name.startswith("__")


def validate_metric_name(name: str) -> str:
    """Return ``name``; raise ``ValueError`` when it is not a legal name.

    Called at instrument-creation time by
    :class:`~repro.obs.metrics.MetricsRegistry` — once per instrument,
    never on the observation hot path.
    """
    if not is_valid_metric_name(name):
        raise ValueError(
            f"invalid metric name {name!r}: must match "
            f"{METRIC_NAME_RE.pattern}"
        )
    return name


def validate_label_name(name: str) -> str:
    """Return ``name``; raise ``ValueError`` for an illegal label key."""
    if not is_valid_label_name(name):
        raise ValueError(
            f"invalid metric label name {name!r}: must match "
            f"{LABEL_NAME_RE.pattern} and not start with '__'"
        )
    return name


def escape_label_value(value: object) -> str:
    """Escape a label value for the Prometheus text exposition format.

    Backslash first (so the other escapes stay unambiguous), then quote
    and newline. Injective: two distinct values never escape to the same
    rendering, so escaped labels cannot collide.
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )
