"""The run ledger: an append-only, content-addressed perf history.

``BENCH_pipeline.json`` holds exactly one snapshot — regenerate it and
the previous numbers are gone, so a 2× slowdown that lands between two
regenerations merges silently. The ledger keeps *every* run: one JSONL
line per record, append-only (nothing here ever rewrites or deletes a
line), under a directory chosen with ``--ledger-dir``.

Identity is two-layered, both content-addressed:

* ``run_id`` — *what was run*: the capture/config fingerprint from
  :mod:`repro.core.persist` plus the seed. Re-running the same workload
  on a new commit produces a new record with the same ``run_id``, which
  is how records line up for comparison.
* ``record_id`` — *this execution*: a SHA-256 over the record's own
  canonical JSON (everything but the id itself). Tamper-evident and
  unique per append; every CLI surface accepts an unambiguous prefix.

Records carry the per-phase wall timings (the
:func:`~repro.obs.profile.phase_timings` dict, min-of-repeats), key
metrics, optional benchmark payloads, and optionally the folded profile
behind a flamegraph. :func:`gate_records` is the regression gate:
per-phase comparison against a baseline record with explicit noise
tolerances, built so ``repro runs gate`` can fail a CI build.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import warnings
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.obs.metrics import NOOP_REGISTRY, MetricsRegistry

#: Name of the append-only record file inside a ledger directory.
LEDGER_FILE = "ledger.jsonl"

#: Phases shorter than this are never gated — at single-millisecond
#: scale the scheduler owns the number, not the code under test.
DEFAULT_FLOOR_S = 0.005

#: Default per-phase regression tolerance, in percent. Generous on
#: purpose: the gate is meant to catch structural slowdowns (2×), not
#: to re-litigate scheduler jitter; tighten it per-invocation when the
#: baseline comes from the same machine.
DEFAULT_TOL_PCT = 25.0


class RunRecord:
    """One pipeline execution, as the ledger stores it."""

    def __init__(
        self,
        run_id: str,
        command: str,
        scenario: str,
        seed: Optional[int],
        messages: int,
        phases: Dict[str, float],
        total_s: float,
        metrics: Optional[Dict[str, float]] = None,
        bench: Optional[Dict[str, Any]] = None,
        folded: Optional[Dict[str, float]] = None,
        repeats: int = 1,
        noise_floor_pct: float = 0.0,
        created_at: Optional[str] = None,
        record_id: Optional[str] = None,
    ) -> None:
        self.run_id = run_id
        self.command = command
        self.scenario = scenario
        self.seed = seed
        self.messages = messages
        self.phases = dict(phases)
        self.total_s = total_s
        self.metrics = dict(metrics or {})
        self.bench = dict(bench or {})
        self.folded = dict(folded) if folded else None
        self.repeats = repeats
        self.noise_floor_pct = noise_floor_pct
        self.created_at = created_at or time.strftime("%Y-%m-%dT%H:%M:%S%z")
        self.record_id = record_id or ""
        if not self.record_id:
            self.record_id = self.content_id()

    # -- serialization ---------------------------------------------------

    def to_dict(self, include_folded: bool = True) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "record_id": self.record_id,
            "run_id": self.run_id,
            "created_at": self.created_at,
            "command": self.command,
            "scenario": self.scenario,
            "seed": self.seed,
            "messages": self.messages,
            "phases": {k: round(v, 6) for k, v in sorted(self.phases.items())},
            "total_s": round(self.total_s, 6),
            "metrics": dict(sorted(self.metrics.items())),
            "bench": self.bench,
            "repeats": self.repeats,
            "noise_floor_pct": round(self.noise_floor_pct, 3),
        }
        if include_folded and self.folded is not None:
            out["folded"] = {
                k: round(v, 6) for k, v in sorted(self.folded.items())
            }
        return out

    def summary(self) -> Dict[str, Any]:
        """The lightweight listing row (no phases, no folded profile)."""
        return {
            "record_id": self.record_id,
            "run_id": self.run_id,
            "created_at": self.created_at,
            "command": self.command,
            "scenario": self.scenario,
            "seed": self.seed,
            "messages": self.messages,
            "total_s": round(self.total_s, 6),
            "phases": len(self.phases),
            "profiled": self.folded is not None,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunRecord":
        return cls(
            run_id=data["run_id"],
            command=data.get("command", "?"),
            scenario=data.get("scenario", "?"),
            seed=data.get("seed"),
            messages=int(data.get("messages", 0)),
            phases={k: float(v) for k, v in data.get("phases", {}).items()},
            total_s=float(data.get("total_s", 0.0)),
            metrics=data.get("metrics"),
            bench=data.get("bench"),
            folded=data.get("folded"),
            repeats=int(data.get("repeats", 1)),
            noise_floor_pct=float(data.get("noise_floor_pct", 0.0)),
            created_at=data.get("created_at"),
            record_id=data.get("record_id"),
        )

    def content_id(self) -> str:
        """The content address: SHA-256 of everything but the id itself."""
        payload = self.to_dict()
        payload.pop("record_id", None)
        canonical = json.dumps(payload, sort_keys=True).encode("utf-8")
        return hashlib.sha256(canonical).hexdigest()[:12]

    @classmethod
    def from_bench(cls, payload: Dict[str, Any], source: str = "") -> "RunRecord":
        """Adapt a ``BENCH_pipeline.json`` payload into a gate baseline.

        The benchmark emitter and ``repro profile`` produce the same
        ``phases`` dict (slash-joined span paths from
        :func:`~repro.obs.profile.phase_timings`), so the committed perf
        baseline is directly usable as the ``--baseline`` of a gate. The
        payload's ``throughput`` section rides along in ``bench``; the
        floors it declares (``min_messages_per_s``) are what
        :func:`gate_records` enforces against the current record's
        measured rates.
        """
        noise = 0.0
        obs_overhead = payload.get("obs_overhead")
        if isinstance(obs_overhead, dict):
            noise = float(obs_overhead.get("noise_floor_pct", 0.0))
        bench: Dict[str, Any] = {}
        metrics: Dict[str, float] = {}
        throughput = payload.get("throughput")
        if isinstance(throughput, dict):
            bench["throughput"] = throughput
            simulate = throughput.get("simulate")
            if isinstance(simulate, dict) and "messages_per_s" in simulate:
                metrics["messages_per_s"] = float(simulate["messages_per_s"])
            service = throughput.get("service")
            if isinstance(service, dict) and "messages_per_s" in service:
                metrics["service_messages_per_s"] = float(
                    service["messages_per_s"]
                )
        return cls(
            run_id=f"bench:{payload.get('benchmark', 'pipeline')}",
            command="bench",
            scenario=source or str(payload.get("benchmark", "pipeline")),
            seed=payload.get("seed"),
            messages=int(payload.get("messages", 0)),
            phases={
                k: float(v) for k, v in payload.get("phases", {}).items()
            },
            total_s=float(payload.get("total_s", 0.0)),
            metrics=metrics,
            bench=bench,
            repeats=3,
            noise_floor_pct=noise,
            created_at=payload.get("created_at"),
        )


class RunLedger:
    """Append-only record store under one directory.

    Usage::

        ledger = RunLedger("perf-ledger")
        ledger.append(record)
        for rec in ledger.records():
            ...
    """

    def __init__(
        self, root: str, metrics: MetricsRegistry = NOOP_REGISTRY
    ) -> None:
        self.root = root
        self.path = os.path.join(root, LEDGER_FILE)
        self._m_append = metrics.counter("runs_records_total", status="append")
        self._m_skipped = metrics.counter("runs_records_total", status="skipped")

    def append(self, record: RunRecord) -> RunRecord:
        """Append one record (a single ``write`` of one JSON line)."""
        os.makedirs(self.root, exist_ok=True)
        line = json.dumps(record.to_dict(), sort_keys=True)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")
        self._m_append.inc()
        return record

    def records(self) -> List[RunRecord]:
        """Every readable record, oldest first.

        A torn trailing line (crash mid-append) or hand-mangled line is
        skipped with a warning — append-only files must stay readable
        past local damage.
        """
        if not os.path.exists(self.path):
            return []
        out: List[RunRecord] = []
        with open(self.path, encoding="utf-8") as fh:
            for lineno, raw in enumerate(fh, start=1):
                if not raw.strip():
                    continue
                try:
                    out.append(RunRecord.from_dict(json.loads(raw)))
                except (ValueError, KeyError, TypeError) as exc:
                    self._m_skipped.inc()
                    warnings.warn(
                        f"skipping unreadable ledger line "
                        f"{self.path}:{lineno}: {exc}",
                        stacklevel=2,
                    )
        return out

    def get(self, prefix: str) -> RunRecord:
        """The record whose id starts with ``prefix``.

        Raises:
            KeyError: when no record matches, or the prefix is ambiguous.
        """
        matches = [
            r for r in self.records() if r.record_id.startswith(prefix)
        ]
        if not matches:
            raise KeyError(f"no ledger record matches {prefix!r}")
        if len({r.record_id for r in matches}) > 1:
            ids = ", ".join(sorted({r.record_id for r in matches}))
            raise KeyError(f"ambiguous record prefix {prefix!r}: {ids}")
        return matches[-1]

    def latest(self, run_id: Optional[str] = None) -> Optional[RunRecord]:
        """The newest record, optionally restricted to one ``run_id``."""
        best: Optional[RunRecord] = None
        for record in self.records():
            if run_id is not None and record.run_id != run_id:
                continue
            best = record
        return best


# ----------------------------------------------------------------------
# Comparison and the regression gate
# ----------------------------------------------------------------------


def compare_records(
    baseline: RunRecord, current: RunRecord
) -> List[Dict[str, Any]]:
    """Per-phase delta rows between two records (baseline vs current).

    Every phase present in either record appears; a phase missing on one
    side reports ``None`` there and a ``delta_pct`` of ``None``.
    """
    rows: List[Dict[str, Any]] = []
    names = sorted(set(baseline.phases) | set(current.phases))
    for name in names:
        base = baseline.phases.get(name)
        cur = current.phases.get(name)
        delta: Optional[float] = None
        if base is not None and cur is not None and base > 0:
            delta = (cur / base - 1.0) * 100.0
        rows.append(
            {"phase": name, "baseline_s": base, "current_s": cur, "delta_pct": delta}
        )
    rows.append(
        {
            "phase": "(total)",
            "baseline_s": baseline.total_s,
            "current_s": current.total_s,
            "delta_pct": (
                (current.total_s / baseline.total_s - 1.0) * 100.0
                if baseline.total_s > 0
                else None
            ),
        }
    )
    return rows


class GateResult:
    """The outcome of one regression gate: pass/fail plus the evidence.

    ``floors`` holds the rate-floor rows (throughput checks) — unlike
    phase rows, these compare a *measured rate* against a *declared
    minimum* from the baseline's benchmark payload, so they are listed
    and rendered separately from the duration deltas.
    """

    def __init__(
        self,
        ok: bool,
        regressions: List[Dict[str, Any]],
        checked: List[Dict[str, Any]],
        tolerance_pct: float,
        floor_s: float,
        floors: Optional[List[Dict[str, Any]]] = None,
    ) -> None:
        self.ok = ok
        self.regressions = regressions
        self.checked = checked
        self.tolerance_pct = tolerance_pct
        self.floor_s = floor_s
        self.floors = floors or []

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "tolerance_pct": self.tolerance_pct,
            "floor_s": self.floor_s,
            "regressions": self.regressions,
            "checked": self.checked,
            "floors": self.floors,
        }

    def render(self) -> str:
        lines = [
            f"perf gate: tolerance +{self.tolerance_pct:g}% "
            f"(floor {self.floor_s * 1000:g}ms), "
            f"{len(self.checked)} phase(s) checked"
        ]
        for row in self.checked:
            mark = "FAIL" if row in self.regressions else "  ok"
            lines.append(
                f"  {mark} {row['phase']:<28} "
                f"{row['baseline_s'] * 1000:>10.2f}ms -> "
                f"{row['current_s'] * 1000:>10.2f}ms "
                f"({row['delta_pct']:+.1f}%)"
            )
        for row in self.floors:
            mark = "  ok" if row["ok"] else "FAIL"
            lines.append(
                f"  {mark} {row['name']:<28} "
                f"{row['current']:>13,.0f}/s vs floor "
                f"{row['floor']:,.0f}/s "
                f"(effective {row['effective_floor']:,.0f}/s at "
                f"+{row['tolerance_pct']:g}% tol)"
            )
        failed_floors = sum(1 for row in self.floors if not row["ok"])
        if self.ok:
            lines.append("gate PASSED")
        else:
            detail = []
            if self.regressions:
                detail.append(
                    f"{len(self.regressions)} phase(s) regressed "
                    "beyond tolerance"
                )
            if failed_floors:
                detail.append(
                    f"{failed_floors} throughput floor(s) missed"
                )
            lines.append("gate FAILED: " + ", ".join(detail))
        return "\n".join(lines)


def _measured_rate(
    record: RunRecord, name: str, section: str = "simulate"
) -> Optional[float]:
    """A record's measured rate metric: ``metrics`` first (profile
    records), then its own benchmark throughput ``section``
    (bench-adapted records gating against each other). None when the
    record predates rate measurement."""
    if name in record.metrics:
        return float(record.metrics[name])
    sub = (record.bench.get("throughput") or {}).get(section)
    if isinstance(sub, dict) and "messages_per_s" in sub:
        return float(sub["messages_per_s"])
    return None


#: The throughput floors :func:`gate_records` enforces, each a
#: ``(section, metric, row name)`` triple: the ``throughput`` subsection
#: of the baseline bench that declares ``min_messages_per_s``, the
#: current record's metric holding the measured rate, and the label of
#: the resulting gate row.
_RATE_FLOORS: Tuple[Tuple[str, str, str], ...] = (
    ("simulate", "messages_per_s", "throughput/messages_per_s"),
    ("service", "service_messages_per_s", "throughput/service_messages_per_s"),
)


def gate_records(
    current: RunRecord,
    baseline: RunRecord,
    tolerance_pct: float = DEFAULT_TOL_PCT,
    floor_s: float = DEFAULT_FLOOR_S,
) -> GateResult:
    """Fail when any shared phase (or the total) regressed past tolerance.

    The effective tolerance is ``max(tolerance_pct, noise floors)`` of
    both records — a baseline whose own repeats spread 40% cannot
    credibly flag a 25% delta, and min-of-repeats timing makes those
    floors explicit rather than implied. A phase only fails when both
    the relative threshold *and* the absolute ``floor_s`` are exceeded,
    so microsecond phases never gate the build. Phases that appear or
    disappear are reported in ``checked`` rows but never fail the gate
    (renames are a code review concern, not a perf regression).

    When the baseline carries a ``throughput`` benchmark section (a
    :meth:`RunRecord.from_bench` adaptation of ``BENCH_pipeline.json``)
    declaring ``min_messages_per_s``, and the current record measured a
    ``messages_per_s`` metric, the gate additionally fails if the
    measured ingest rate lands below the floor — relaxed by the same
    effective tolerance plus the throughput section's own noise floor,
    so a noisy runner cannot flunk a genuinely-fast build. A current
    record with no measured rate skips the check (older profile records
    predate the metric); the floor row never silently passes on missing
    *baseline* data because the floor itself comes from the baseline.
    """
    effective = max(
        tolerance_pct, baseline.noise_floor_pct, current.noise_floor_pct
    )
    checked: List[Dict[str, Any]] = []
    regressions: List[Dict[str, Any]] = []
    pairs = [
        (name, baseline.phases[name], current.phases[name])
        for name in sorted(set(baseline.phases) & set(current.phases))
    ]
    pairs.append(("(total)", baseline.total_s, current.total_s))
    for name, base, cur in pairs:
        if base < floor_s and cur < floor_s:
            continue
        delta_pct = (cur / base - 1.0) * 100.0 if base > 0 else 0.0
        row = {
            "phase": name,
            "baseline_s": base,
            "current_s": cur,
            "delta_pct": delta_pct,
        }
        checked.append(row)
        if delta_pct > effective and (cur - base) > floor_s:
            regressions.append(row)

    floors: List[Dict[str, Any]] = []
    for section, metric, row_name in _RATE_FLOORS:
        sub = (baseline.bench.get("throughput") or {}).get(section)
        if not isinstance(sub, dict):
            continue
        floor = float(sub.get("min_messages_per_s") or 0.0)
        measured = _measured_rate(current, metric, section)
        if floor > 0 and measured is not None:
            tol = max(effective, float(sub.get("noise_floor_pct", 0.0)))
            need = floor / (1.0 + tol / 100.0)
            floors.append(
                {
                    "name": row_name,
                    "floor": floor,
                    "effective_floor": round(need, 1),
                    "current": measured,
                    "tolerance_pct": tol,
                    "ok": measured >= need,
                }
            )
    return GateResult(
        ok=not regressions and all(row["ok"] for row in floors),
        regressions=regressions,
        checked=checked,
        tolerance_pct=effective,
        floor_s=floor_s,
        floors=floors,
    )


def render_records_table(records: Iterable[RunRecord]) -> str:
    """The ``repro runs list`` table."""
    rows = list(records)
    if not rows:
        return "(empty ledger)"
    lines = [
        f"{'record':<14} {'run':<18} {'created':<24} {'command':<9} "
        f"{'scenario':<26} {'total s':>9} {'msgs':>7} {'prof':>5}"
    ]
    for r in rows:
        lines.append(
            f"{r.record_id:<14} {r.run_id:<18} {r.created_at:<24} "
            f"{r.command:<9} {r.scenario:<26} {r.total_s:>9.4f} "
            f"{r.messages:>7d} {'yes' if r.folded else '-':>5}"
        )
    return "\n".join(lines)


def render_compare_table(rows: List[Dict[str, Any]]) -> str:
    """The ``repro runs compare`` table."""
    lines = [f"{'phase':<30} {'baseline ms':>12} {'current ms':>12} {'delta':>8}"]
    for row in rows:
        base = (
            f"{row['baseline_s'] * 1000:.2f}"
            if row["baseline_s"] is not None
            else "-"
        )
        cur = (
            f"{row['current_s'] * 1000:.2f}"
            if row["current_s"] is not None
            else "-"
        )
        delta = (
            f"{row['delta_pct']:+.1f}%" if row["delta_pct"] is not None else "-"
        )
        lines.append(f"{row['phase']:<30} {base:>12} {cur:>12} {delta:>8}")
    return "\n".join(lines)
