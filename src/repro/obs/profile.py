"""Profiling presentation: turn a span tree into a phase-timing table.

The ``--profile`` CLI flag runs the pipeline with a real
:class:`~repro.obs.tracing.Tracer` and hands the result here; the same
helpers feed the machine-readable benchmark baseline
(``BENCH_pipeline.json``) so what an operator reads on the terminal and
what the perf trajectory records are the same numbers.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.obs.tracing import Span, Tracer


def phase_rows(tracer: Tracer) -> List[Dict[str, Any]]:
    """Flatten the span forest into table rows (depth-first order).

    Each row carries the span's depth (for indentation), wall-clock
    duration, self time (minus children), and share of its root span.
    """
    rows: List[Dict[str, Any]] = []

    def visit(span: Span, depth: int, root_duration: float) -> None:
        share = span.duration / root_duration if root_duration > 0 else 0.0
        row: Dict[str, Any] = {
            "phase": span.name,
            "depth": depth,
            "wall_s": span.duration,
            "self_s": span.self_duration,
            "share": share,
        }
        if span.sim_duration is not None:
            row["sim_s"] = span.sim_duration
        if span.meta:
            row["meta"] = dict(span.meta)
        rows.append(row)
        for child in span.children:
            visit(child, depth + 1, root_duration)

    for root in tracer.roots:
        visit(root, 0, root.duration)
    return rows


def render_phase_table(tracer: Tracer, title: str = "phase timings") -> str:
    """The human-readable ``--profile`` table."""
    rows = phase_rows(tracer)
    if not rows:
        return f"{title}: (no spans recorded)"
    lines = [
        f"{title}:",
        f"  {'phase':<28} {'wall ms':>10} {'self ms':>10} {'share':>7}",
    ]
    for row in rows:
        indent = "  " * row["depth"]
        name = f"{indent}{row['phase']}"
        lines.append(
            f"  {name:<28} {row['wall_s'] * 1000:>10.2f} "
            f"{row['self_s'] * 1000:>10.2f} {row['share'] * 100:>6.1f}%"
        )
    return "\n".join(lines)


def phase_timings(tracer: Tracer) -> Dict[str, float]:
    """``{span path: wall seconds}`` — the benchmark-baseline payload.

    Paths are slash-joined (``model/app-signature``) and repeated spans
    accumulate, so the dict is stable across runs of the same pipeline.
    """
    out: Dict[str, float] = {}

    def visit(span: Span, path: str) -> None:
        full = f"{path}/{span.name}" if path else span.name
        out[full] = out.get(full, 0.0) + span.duration
        for child in span.children:
            visit(child, full)

    for root in tracer.roots:
        visit(root, "")
    return out
