"""Nestable spans: where wall-clock (and sim-clock) time goes.

A :class:`Tracer` records a tree of named spans. Each ``with
tracer.span("phase"):`` block captures wall-clock duration via
``time.perf_counter`` and, when the tracer was given a simulation clock,
the simulated time covered as well — so "the stability phase took 40 ms of
CPU" and "this window covered 30 s of simulated traffic" come out of the
same tree.

The default everywhere is :data:`NOOP_TRACER`, whose ``span`` returns a
shared do-nothing context manager; uninstrumented code pays one method
call per phase boundary (phases, not packets — spans are deliberately too
coarse for per-event use; that is what histograms are for).

A real :class:`Tracer` additionally dispatches to registered *span
hooks* — objects with ``span_opened(span)``/``span_closed(span)``
methods — at every boundary. This is how the span-scoped profiler
(:mod:`repro.obs.profiler`) attaches without the pipeline knowing about
it; with no hooks registered the dispatch is a single truthiness check.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Iterator, List, Optional


def wall_now() -> float:
    """The observability wall clock: a monotonic seconds reading.

    This is the one sanctioned wall-clock read for latency measurement in
    packages under the flowlint ``sim-clock`` rule (the monitor, the
    streaming service). Simulation and diagnosis logic must never branch
    on it — it exists solely to feed duration histograms and span
    timings, and it lives here because ``repro.obs`` is the layer that is
    *supposed* to look at the real clock.
    """
    return time.perf_counter()


class Span:
    """One timed region; children are spans opened while it was active."""

    __slots__ = (
        "name",
        "meta",
        "children",
        "start_wall",
        "end_wall",
        "start_sim",
        "end_sim",
    )

    def __init__(
        self,
        name: str,
        meta: Optional[Dict[str, Any]] = None,
        start_sim: Optional[float] = None,
    ) -> None:
        self.name = name
        self.meta = meta or {}
        self.children: List["Span"] = []
        self.start_wall = time.perf_counter()
        self.end_wall: Optional[float] = None
        self.start_sim = start_sim
        self.end_sim: Optional[float] = None

    @property
    def duration(self) -> float:
        """Wall-clock seconds spent in the span (so far, if still open)."""
        end = self.end_wall if self.end_wall is not None else time.perf_counter()
        return end - self.start_wall

    @property
    def sim_duration(self) -> Optional[float]:
        """Simulated seconds covered, when a sim clock was attached."""
        if self.start_sim is None or self.end_sim is None:
            return None
        return self.end_sim - self.start_sim

    @property
    def self_duration(self) -> float:
        """Wall-clock time not attributed to any child span."""
        return max(0.0, self.duration - sum(c.duration for c in self.children))

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready representation of this span and its subtree."""
        out: Dict[str, Any] = {
            "name": self.name,
            "duration_s": self.duration,
        }
        if self.sim_duration is not None:
            out["sim_duration_s"] = self.sim_duration
        if self.meta:
            out["meta"] = dict(self.meta)
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name}, {self.duration * 1000:.3f}ms, {len(self.children)} children)"


class _SpanContext:
    """The context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._close(self._span)


class Tracer:
    """Collects a forest of spans for one profiled operation.

    Args:
        sim_clock: optional zero-arg callable returning the current
            simulation time; when given, every span also records the
            simulated interval it covered.
    """

    def __init__(self, sim_clock: Optional[Callable[[], float]] = None) -> None:
        self.roots: List[Span] = []
        self._stack: List[Span] = []
        self._sim_clock = sim_clock
        self._hooks: List[Any] = []

    @property
    def enabled(self) -> bool:
        return True

    def add_hook(self, hook: Any) -> None:
        """Register a span hook (``span_opened``/``span_closed`` methods).

        Hooks fire on every boundary of this tracer, children before
        parents on close — including exception unwinding. Register hooks
        before the first span opens; a hook attached mid-tree must
        tolerate close events for spans it never saw open.
        """
        self._hooks.append(hook)

    def span(self, name: str, **meta: Any) -> _SpanContext:
        """Open a nested span; use as ``with tracer.span("compare"):``."""
        start_sim = self._sim_clock() if self._sim_clock is not None else None
        span = Span(name, meta=meta or None, start_sim=start_sim)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        if self._hooks:
            for hook in self._hooks:
                hook.span_opened(span)
        return _SpanContext(self, span)

    def _close(self, span: Span) -> None:
        span.end_wall = time.perf_counter()
        if self._sim_clock is not None:
            span.end_sim = self._sim_clock()
        # Unwind to (and past) the closing span so an exception inside a
        # parent block cannot leave orphaned children on the stack. Hooks
        # see every popped span (innermost first), so a profiler observes
        # the same close order whether the block exited cleanly or not.
        while self._stack:
            top = self._stack.pop()
            if top.end_wall is None and top is not span:
                top.end_wall = span.end_wall
                if self._sim_clock is not None:
                    top.end_sim = span.end_sim
            if self._hooks:
                for hook in self._hooks:
                    hook.span_closed(top)
            if top is span:
                break

    # -- introspection --------------------------------------------------

    def walk(self) -> Iterator[Span]:
        """Every span in the forest, depth-first, parents before children."""
        stack = list(reversed(self.roots))
        while stack:
            span = stack.pop()
            yield span
            stack.extend(reversed(span.children))

    def find(self, name: str) -> List[Span]:
        """All spans named ``name``, in depth-first order."""
        return [s for s in self.walk() if s.name == name]

    def total(self, name: str) -> float:
        """Total wall-clock seconds across all spans named ``name``."""
        return sum(s.duration for s in self.find(name))

    def to_dict(self) -> Dict[str, Any]:
        """The whole forest, JSON-ready."""
        return {"spans": [s.to_dict() for s in self.roots]}


class _NoopSpanContext:
    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NOOP_SPAN = _NoopSpanContext()


class NoopTracer(Tracer):
    """A tracer that records nothing — the default everywhere."""

    def __init__(self) -> None:
        super().__init__()

    @property
    def enabled(self) -> bool:
        return False

    def span(self, name: str, **meta: Any):  # type: ignore[override]
        return _NOOP_SPAN


#: The shared do-nothing tracer; identity-comparable (`is NOOP_TRACER`).
NOOP_TRACER = NoopTracer()
