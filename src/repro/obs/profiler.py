"""Span-scoped function profiling: which functions burn each phase.

Spans say *that* ``model/stability`` costs 120 ms; this module says
*where* — per-function inclusive/exclusive time attributed to the span
that was open while the function ran. A :class:`SpanProfiler` registers
as a hook on a real :class:`~repro.obs.tracing.Tracer` and keeps one
``cProfile.Profile`` per open span, switching profiles at every span
boundary, so a function called from two phases is billed to each phase
separately. Off by default everywhere: the uninstrumented pipeline never
constructs one, and a hook-less tracer pays a single truthiness check
per boundary (benchmarked and gated <5% in the microbench suite).

Results fold into the collapsed-stack format Brendan Gregg's flamegraph
tooling popularized — ``span;subspan;file.py:func <value>`` lines — which
:mod:`repro.obs.flamegraph` renders as a self-contained SVG and the run
ledger (:mod:`repro.obs.ledger`) stores per run. Values are microseconds
under the default wall timer; under a :func:`deterministic_timer` they
are profile-event counts, which makes the folded output (and therefore
the rendered SVG) byte-identical across runs of the same seeded input.
"""

from __future__ import annotations

import cProfile
from typing import (
    IO,
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Tuple,
)

from repro.obs.metrics import NOOP_REGISTRY, MetricsRegistry
from repro.obs.tracing import Span, Tracer


def deterministic_timer() -> Callable[[], int]:
    """A cProfile timer that counts profile events instead of seconds.

    Every call advances a counter by one, so two runs of the same code
    path produce identical "timings" — the property behind
    ``repro profile --deterministic`` and the byte-identical-SVG tests.
    Slow (one Python call per profile event); for measurement use the
    default wall timer and accept run-to-run jitter.
    """
    state = {"now": 0}

    def timer() -> int:
        state["now"] += 1
        return state["now"]

    return timer


def _frame_key(code: Any) -> str:
    """A stable, machine-independent label for one profiled frame.

    Code objects become ``relative/path.py:func`` with the path cut at
    the innermost ``repro/`` (or basename otherwise); cProfile's
    built-in entries are plain strings already.
    """
    if isinstance(code, str):
        return code
    filename = code.co_filename.replace("\\", "/")
    marker = filename.rfind("/repro/")
    if marker >= 0:
        short = filename[marker + 1 :]
    else:
        short = filename.rsplit("/", 1)[-1]
    return f"{short}:{code.co_name}"


class _FuncStat:
    """Accumulated per-(span path, function) numbers."""

    __slots__ = ("inline", "cumulative", "calls")

    def __init__(self) -> None:
        self.inline = 0.0
        self.cumulative = 0.0
        self.calls = 0


class SpanProfiler:
    """A tracer hook that profiles the functions inside every span.

    Usage::

        tracer = Tracer()
        profiler = SpanProfiler()
        tracer.add_hook(profiler)
        fd = FlowDiff(tracer=tracer)
        ...                         # run the pipeline
        profiler.write_folded("profile.folded")

    One ``cProfile.Profile`` exists per *open* span; entering a child
    span parks the parent's profile and exits resume it, so each span's
    stats cover exactly its self time and fold under its own path. The
    per-boundary switch costs microseconds against phase-scale spans.

    Args:
        timer: optional custom timer handed to ``cProfile.Profile``
            (see :func:`deterministic_timer`). ``None`` means wall time.
        metrics: optional registry; profiled-span counts are recorded
            under the ``profile_*`` metric family.
    """

    def __init__(
        self,
        timer: Optional[Callable[[], Any]] = None,
        metrics: MetricsRegistry = NOOP_REGISTRY,
    ) -> None:
        self._timer = timer
        # Open spans, outermost first: (span, profile, path names).
        self._stack: List[Tuple[Span, cProfile.Profile, Tuple[str, ...]]] = []
        # Collected stats: span path -> frame key -> _FuncStat.
        self._stats: Dict[Tuple[str, ...], Dict[str, _FuncStat]] = {}
        self._m_spans = metrics.counter("profile_spans_total")

    # -- Tracer hook protocol -------------------------------------------

    def span_opened(self, span: Span) -> None:
        if self._stack:
            self._stack[-1][1].disable()
            path = self._stack[-1][2] + (span.name,)
        else:
            path = (span.name,)
        profile = (
            cProfile.Profile(self._timer)
            if self._timer is not None
            else cProfile.Profile()
        )
        self._stack.append((span, profile, path))
        profile.enable()

    def span_closed(self, span: Span) -> None:
        if not self._stack or self._stack[-1][0] is not span:
            # Attached mid-tree: a close for a span we never saw open.
            return
        _, profile, path = self._stack.pop()
        profile.disable()
        self._collect(path, profile)
        if self._stack:
            self._stack[-1][1].enable()

    # -- collection ------------------------------------------------------

    def _collect(self, path: Tuple[str, ...], profile: cProfile.Profile) -> None:
        funcs = self._stats.setdefault(path, {})
        for entry in profile.getstats():
            stat = funcs.setdefault(_frame_key(entry.code), _FuncStat())
            stat.inline += entry.inlinetime
            stat.cumulative += entry.totaltime
            stat.calls += entry.callcount
        self._m_spans.inc()

    # -- results ---------------------------------------------------------

    def folded(self) -> Dict[str, float]:
        """Collapsed stacks: ``span;subspan;file.py:func`` -> seconds.

        Exclusive (inline) time only, so summing every line under one
        span-path prefix reproduces that span's inclusive duration —
        the reconciliation contract the tests pin.
        """
        out: Dict[str, float] = {}
        for path, funcs in self._stats.items():
            base = ";".join(path)
            for key, stat in funcs.items():
                if stat.inline <= 0.0:
                    continue
                folded_key = f"{base};{key}"
                out[folded_key] = out.get(folded_key, 0.0) + stat.inline
        return out

    def folded_lines(self, scale: float = 1e6) -> List[str]:
        """The folded stacks as sorted ``stack value`` lines.

        ``scale`` converts seconds to the integer unit written (default
        microseconds, the flamegraph-tooling convention). Deterministic:
        lines are sorted and values rounded, so equal profiles serialize
        identically.
        """
        folded = self.folded()
        return [
            f"{stack} {round(value * scale)}"
            for stack, value in sorted(folded.items())
            if round(value * scale) > 0
        ]

    def write_folded(self, path_or_file: Any, scale: float = 1e6) -> int:
        """Write the folded stacks; returns the number of lines."""
        lines = self.folded_lines(scale=scale)
        if hasattr(path_or_file, "write"):
            fh: IO[str] = path_or_file
            fh.write("\n".join(lines) + "\n")
        else:
            with open(path_or_file, "w", encoding="utf-8") as fh:
                fh.write("\n".join(lines) + "\n")
        return len(lines)

    def phase_totals(self) -> Dict[str, float]:
        """Inclusive profiled seconds per span path (slash-joined).

        The profiled counterpart of
        :func:`repro.obs.profile.phase_timings`: ``model`` includes every
        function billed to ``model`` itself *and* to any span below it.
        """
        out: Dict[str, float] = {}
        for path, funcs in self._stats.items():
            exclusive = sum(stat.inline for stat in funcs.values())
            for depth in range(len(path)):
                prefix = "/".join(path[: depth + 1])
                out[prefix] = out.get(prefix, 0.0) + exclusive
        return out

    def function_rows(
        self, phase: Optional[str] = None, top: int = 20
    ) -> List[Dict[str, Any]]:
        """The hottest functions, exclusive-time first, as table rows.

        Args:
            phase: restrict to one slash-joined span path prefix
                (``model/stability``); ``None`` aggregates every span.
            top: row budget.
        """
        wanted: Optional[Tuple[str, ...]] = (
            tuple(phase.split("/")) if phase else None
        )
        merged: Dict[str, _FuncStat] = {}
        for path, funcs in self._stats.items():
            if wanted is not None and path[: len(wanted)] != wanted:
                continue
            for key, stat in funcs.items():
                agg = merged.setdefault(key, _FuncStat())
                agg.inline += stat.inline
                agg.cumulative += stat.cumulative
                agg.calls += stat.calls
        ranked = sorted(
            merged.items(), key=lambda item: (-item[1].inline, item[0])
        )
        return [
            {
                "function": key,
                "exclusive_s": stat.inline,
                "inclusive_s": stat.cumulative,
                "calls": stat.calls,
            }
            for key, stat in ranked[: max(0, top)]
        ]


def attach_profiler(
    tracer: Tracer,
    timer: Optional[Callable[[], Any]] = None,
    metrics: MetricsRegistry = NOOP_REGISTRY,
) -> SpanProfiler:
    """Construct a :class:`SpanProfiler` and hook it onto ``tracer``."""
    profiler = SpanProfiler(timer=timer, metrics=metrics)
    tracer.add_hook(profiler)
    return profiler


def render_function_table(
    profiler: SpanProfiler,
    phase: Optional[str] = None,
    top: int = 20,
    title: str = "hot functions",
    unit: str = "ms",
) -> str:
    """The human-readable ``repro profile`` function table.

    ``unit`` names the value column: ``"ms"`` (the default) scales the
    recorded seconds by 1000; any other unit (e.g. ``"events"`` under the
    deterministic timer) prints the raw values.
    """
    scale = 1000.0 if unit == "ms" else 1.0
    rows = profiler.function_rows(phase=phase, top=top)
    scope = f" in {phase}" if phase else ""
    if not rows:
        return f"{title}{scope}: (no profile collected)"
    lines = [
        f"{title}{scope}:",
        f"  {'function':<56} {'excl ' + unit:>12} {'incl ' + unit:>12} "
        f"{'calls':>9}",
    ]
    for row in rows:
        name = row["function"]
        if len(name) > 56:
            name = "..." + name[-53:]
        lines.append(
            f"  {name:<56} {row['exclusive_s'] * scale:>12.2f} "
            f"{row['inclusive_s'] * scale:>12.2f} {row['calls']:>9d}"
        )
    return "\n".join(lines)


def reconcile_phases(
    tracer: Tracer, profiler: SpanProfiler, min_seconds: float = 0.05
) -> List[Dict[str, Any]]:
    """Compare span-tree wall time with folded profile time per phase.

    Returns one row per span path at least ``min_seconds`` long:
    ``{"phase", "span_s", "profile_s", "rel_err"}``. The two clocks
    bracket the same region (the profile runs strictly inside the span),
    so large relative error means lost attribution — the property the
    acceptance tests pin at 5%.
    """
    from repro.obs.profile import phase_timings

    spans = phase_timings(tracer)
    profiled = profiler.phase_totals()
    rows: List[Dict[str, Any]] = []
    for path, span_s in sorted(spans.items()):
        if span_s < min_seconds:
            continue
        profile_s = profiled.get(path, 0.0)
        rel = abs(profile_s - span_s) / span_s if span_s > 0 else 0.0
        rows.append(
            {
                "phase": path,
                "span_s": span_s,
                "profile_s": profile_s,
                "rel_err": rel,
            }
        )
    return rows


def merge_folded(folds: Iterable[Dict[str, float]]) -> Dict[str, float]:
    """Sum several folded-stack dicts (repeat runs) into one."""
    out: Dict[str, float] = {}
    for fold in folds:
        for stack, value in fold.items():
            out[stack] = out.get(stack, 0.0) + value
    return out
