"""The data-plane telemetry observatory: bounded per-component time series.

FlowDiff diagnoses a data center from its *control* plane; this module
watches the simulated *data* plane itself — per-link utilization and
drops, flow-table occupancy and evictions, controller PacketIn rates and
reply latency, application RPC latency — so that injected faults, hashing
imbalance, and congestion are visible directly, not only through their
behavioral-model shadows. The 007 line of work (arXiv:1802.07222) makes
per-link evidence the unit of localization; these series are the raw
material the evidence chains and the voting localizer consume.

Memory is bounded by construction, O(components), never O(events):

* every ``(kind, component, metric)`` series folds samples into one open
  **window accumulator** (count/sum/min/max/last plus a decimating
  reservoir for p95) — constant size per series;
* closed windows land in a fixed-capacity **ring buffer** (old windows
  evicted, cumulative totals preserved);
* the hot path is one dict lookup plus attribute math; with the shared
  :data:`NOOP_TELEMETRY` the cost is a single attribute test, mirroring
  :data:`~repro.obs.metrics.NOOP_REGISTRY`.

Export rides the existing :mod:`repro.obs.export` grammar: series render
into a :class:`~repro.obs.metrics.MetricsRegistry` under the
``telemetry_*`` metric family (Prometheus text format), and to JSONL
event dicts that round-trip losslessly via :func:`plane_from_events`.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Deque, Dict, Iterator, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry

#: Series kinds the telemetry plane knows about; the ``telemetry_*``
#: metric-name family (see :mod:`repro.obs.names`) is ``telemetry_<kind>_
#: <metric>``, so this tuple is the first segment's closed vocabulary.
SERIES_KINDS: Tuple[str, ...] = ("link", "switch", "controller", "app", "host")


class WindowStat:
    """Immutable rollup of one closed sampling window."""

    __slots__ = ("t_start", "t_end", "count", "total", "vmin", "vmax", "last", "p95")

    def __init__(
        self,
        t_start: float,
        t_end: float,
        count: int,
        total: float,
        vmin: float,
        vmax: float,
        last: float,
        p95: float,
    ) -> None:
        self.t_start = t_start
        self.t_end = t_end
        self.count = count
        self.total = total
        self.vmin = vmin
        self.vmax = vmax
        self.last = last
        self.p95 = p95

    @property
    def mean(self) -> float:
        """Arithmetic mean of the window's samples (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    def rate(self) -> float:
        """Window sum per second — the natural reading of counter series."""
        span = self.duration
        return self.total / span if span > 0 else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "t_start": self.t_start,
            "t_end": self.t_end,
            "count": self.count,
            "sum": self.total,
            "min": self.vmin,
            "max": self.vmax,
            "mean": self.mean,
            "last": self.last,
            "p95": self.p95,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "WindowStat":
        return cls(
            t_start=data["t_start"],
            t_end=data["t_end"],
            count=data["count"],
            total=data["sum"],
            vmin=data["min"],
            vmax=data["max"],
            last=data["last"],
            p95=data["p95"],
        )

    def _key(self) -> Tuple[float, float, int, float, float, float, float, float]:
        return (
            self.t_start,
            self.t_end,
            self.count,
            self.total,
            self.vmin,
            self.vmax,
            self.last,
            self.p95,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WindowStat):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WindowStat([{self.t_start:g},{self.t_end:g}) n={self.count} "
            f"mean={self.mean:g} p95={self.p95:g})"
        )


def percentile_index(count: int, q: float) -> int:
    """0-based order-statistic index for quantile ``q`` of ``count`` values.

    The inverted-CDF convention (``ceil(q*n) - 1``), matching
    ``numpy.percentile(..., method="inverted_cdf")`` — the recomputation
    the rollup tests check against.
    """
    if count <= 0:
        return 0
    return min(count - 1, max(0, math.ceil(q * count) - 1))


class _WindowAccumulator:
    """Streaming accumulator for the currently open window.

    The p95 reservoir is a decimating sample buffer: once full it keeps
    every second element and doubles its stride, so memory stays at
    ``sample_capacity`` while long windows still yield a deterministic
    (if coarser) tail estimate. Windows with at most ``sample_capacity``
    samples produce the *exact* order-statistic p95.
    """

    __slots__ = (
        "t_start",
        "t_end",
        "count",
        "total",
        "vmin",
        "vmax",
        "last",
        "samples",
        "capacity",
        "stride",
        "_phase",
    )

    def __init__(self, t_start: float, t_end: float, capacity: int) -> None:
        self.t_start = t_start
        self.t_end = t_end
        self.count = 0
        self.total = 0.0
        self.vmin = float("inf")
        self.vmax = float("-inf")
        self.last = 0.0
        self.samples: List[float] = []
        self.capacity = max(8, capacity)
        self.stride = 1
        self._phase = 0

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.vmin:
            self.vmin = value
        if value > self.vmax:
            self.vmax = value
        self.last = value
        self._phase += 1
        if self._phase >= self.stride:
            self._phase = 0
            self.samples.append(value)
            if len(self.samples) >= self.capacity:
                del self.samples[::2]
                self.stride *= 2

    def close(self) -> WindowStat:
        if self.count == 0:
            return WindowStat(self.t_start, self.t_end, 0, 0.0, 0.0, 0.0, 0.0, 0.0)
        ordered = sorted(self.samples)
        p95 = ordered[percentile_index(len(ordered), 0.95)] if ordered else self.last
        return WindowStat(
            self.t_start,
            self.t_end,
            self.count,
            self.total,
            self.vmin,
            self.vmax,
            self.last,
            p95,
        )


class ComponentSeries:
    """One bounded time series: a component's view of one metric.

    Attributes:
        kind: component family (one of :data:`SERIES_KINDS`).
        component: component identity — a switch dpid, an ``a--b`` link
            edge (sorted endpoints, matching evidence-chain naming), an
            application or controller name.
        metric: what is measured (``utilization``, ``drops``, ...).
        counter: True when samples are increments (drops, bytes) whose
            window *sum* and running *total* are the meaningful readings;
            False for level samples (utilization, latency) where
            mean/p95/last matter.
        windows: ring buffer of closed :class:`WindowStat` rollups.
    """

    __slots__ = (
        "kind",
        "component",
        "metric",
        "counter",
        "window",
        "windows",
        "total",
        "count",
        "vmin",
        "vmax",
        "last",
        "last_at",
        "_acc",
        "_sample_capacity",
    )

    def __init__(
        self,
        kind: str,
        component: str,
        metric: str,
        window: float = 1.0,
        capacity: int = 120,
        sample_capacity: int = 256,
        counter: bool = False,
    ) -> None:
        self.kind = kind
        self.component = component
        self.metric = metric
        self.counter = counter
        self.window = max(1e-9, window)
        self.windows: Deque[WindowStat] = deque(maxlen=max(1, capacity))
        self.total = 0.0
        self.count = 0
        self.vmin = float("inf")
        self.vmax = float("-inf")
        self.last = 0.0
        self.last_at = 0.0
        self._acc: Optional[_WindowAccumulator] = None
        self._sample_capacity = sample_capacity

    @property
    def name(self) -> str:
        """The series' ``telemetry_*`` family metric name."""
        return f"telemetry_{self.kind}_{self.metric}"

    def record(self, t: float, value: float) -> None:
        """Fold one sample at stream time ``t`` into the series."""
        self.total += value
        self.count += 1
        if value < self.vmin:
            self.vmin = value
        if value > self.vmax:
            self.vmax = value
        self.last = value
        if t > self.last_at:
            self.last_at = t
        acc = self._acc
        if acc is None:
            acc = self._open_window(t)
        elif t >= acc.t_end:
            self.windows.append(acc.close())
            acc = self._open_window(t)
        acc.add(value)

    def _open_window(self, t: float) -> _WindowAccumulator:
        start = math.floor(t / self.window) * self.window
        self._acc = _WindowAccumulator(start, start + self.window, self._sample_capacity)
        return self._acc

    def flush(self, now: Optional[float] = None, close_partial: bool = True) -> None:
        """Close the open window (if ``now`` passed its end, or forced)."""
        acc = self._acc
        if acc is None or acc.count == 0:
            return
        if now is not None and now < acc.t_end and not close_partial:
            return
        self.windows.append(acc.close())
        self._acc = None

    def closed_windows(self) -> Tuple[WindowStat, ...]:
        """The retained closed windows, oldest first."""
        return tuple(self.windows)

    def peak_window(self) -> Optional[WindowStat]:
        """The retained window with the highest reading (None when empty).

        Counter series compare window sums; level series compare maxima —
        so "peak" always means "worst", which is what heatmaps and
        evidence chains want to surface.
        """
        if not self.windows:
            return None
        if self.counter:
            return max(self.windows, key=lambda w: (w.total, w.t_start))
        return max(self.windows, key=lambda w: (w.vmax, w.t_start))

    def peak_value(self) -> float:
        """The peak window's reading (0.0 when the series is empty)."""
        peak = self.peak_window()
        if peak is None:
            return 0.0
        return peak.total if self.counter else peak.vmax

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": "telemetry_series",
            "kind": self.kind,
            "component": self.component,
            "metric": self.metric,
            "counter": self.counter,
            "window_s": self.window,
            "count": self.count,
            "sum": self.total,
            "min": self.vmin if self.count else 0.0,
            "max": self.vmax if self.count else 0.0,
            "last": self.last,
            "last_at": self.last_at,
            "windows": [w.to_dict() for w in self.windows],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ComponentSeries({self.kind}/{self.component}/{self.metric} "
            f"n={self.count} windows={len(self.windows)})"
        )


class TelemetryPlane:
    """The registry of per-component series sampled during a simulation.

    One plane serves a whole network: switches, links, controllers, and
    applications all record into it, keyed by ``(kind, component,
    metric)``. Hot paths should test :attr:`enabled` first and may hold
    the :class:`ComponentSeries` returned by :meth:`series` to skip the
    dict lookup per sample.

    Args:
        window: rollup window length in stream (simulation) seconds.
        capacity: closed windows retained per series (the ring bound).
        sample_capacity: p95 reservoir size per open window.
    """

    #: Hot loops test this instead of paying even a no-op call.
    enabled = True

    def __init__(
        self,
        window: float = 1.0,
        capacity: int = 120,
        sample_capacity: int = 256,
    ) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.window = window
        self.capacity = capacity
        self.sample_capacity = sample_capacity
        self._series: Dict[Tuple[str, str, str], ComponentSeries] = {}

    def series(
        self, kind: str, component: str, metric: str, counter: bool = False
    ) -> ComponentSeries:
        """Get or create the series at ``(kind, component, metric)``."""
        key = (kind, str(component), metric)
        found = self._series.get(key)
        if found is None:
            if kind not in SERIES_KINDS:
                raise ValueError(
                    f"unknown series kind {kind!r}; expected one of {SERIES_KINDS}"
                )
            found = ComponentSeries(
                kind,
                key[1],
                metric,
                window=self.window,
                capacity=self.capacity,
                sample_capacity=self.sample_capacity,
                counter=counter,
            )
            self._series[key] = found
        return found

    def record(
        self,
        kind: str,
        component: str,
        metric: str,
        t: float,
        value: float,
        counter: bool = False,
    ) -> None:
        """Convenience one-shot record (hot paths hold the series)."""
        self.series(kind, component, metric, counter=counter).record(t, value)

    def flush(self, now: Optional[float] = None, close_partial: bool = True) -> None:
        """Close open windows across every series (end-of-run rollup)."""
        for series in self._series.values():
            series.flush(now, close_partial=close_partial)

    # -- introspection --------------------------------------------------

    def __len__(self) -> int:
        return len(self._series)

    def __iter__(self) -> Iterator[ComponentSeries]:
        """All series, sorted by (kind, component, metric) for stable output."""
        return iter(
            sorted(
                self._series.values(),
                key=lambda s: (s.kind, s.component, s.metric),
            )
        )

    def get(self, kind: str, component: str, metric: str) -> Optional[ComponentSeries]:
        return self._series.get((kind, str(component), metric))

    def components(self, kind: str) -> List[str]:
        """Distinct component ids of one kind, sorted."""
        return sorted({s.component for s in self._series.values() if s.kind == kind})

    def for_component(self, component: str) -> List[ComponentSeries]:
        """Every series whose component matches ``component``.

        A bare node name also matches ``a--b`` link series touching it,
        and an ``a--b`` suspect matches the same link regardless of
        endpoint order — mirroring
        :meth:`~repro.core.diff.report.DiagnosisReport.changes_for`.
        """
        wanted = set(component.split("--")) if "--" in component else {component}
        out = []
        for series in self:
            have = (
                set(series.component.split("--"))
                if "--" in series.component
                else {series.component}
            )
            if component == series.component or wanted & have:
                out.append(series)
        return out

    def summary(self) -> Dict[str, Any]:
        """Totals for health endpoints and CLI footers."""
        kinds: Dict[str, int] = {}
        samples = 0
        for series in self._series.values():
            kinds[series.kind] = kinds.get(series.kind, 0) + 1
            samples += series.count
        return {
            "series": len(self._series),
            "samples": samples,
            "window_s": self.window,
            "capacity": self.capacity,
            "kinds": dict(sorted(kinds.items())),
        }


class _NoopSeries:
    """Shared null series: records nothing, reports emptiness."""

    __slots__ = ()
    kind = "noop"
    component = ""
    metric = "noop"
    counter = False
    count = 0
    total = 0.0
    last = 0.0
    last_at = 0.0
    mean = 0.0
    windows: Deque[WindowStat] = deque(maxlen=1)

    def record(self, t: float, value: float) -> None:
        pass

    def flush(self, now: Optional[float] = None, close_partial: bool = True) -> None:
        pass

    def closed_windows(self) -> Tuple[WindowStat, ...]:
        return ()

    def peak_window(self) -> Optional[WindowStat]:
        return None

    def peak_value(self) -> float:
        return 0.0


_NOOP_SERIES = _NoopSeries()


class NoopTelemetry(TelemetryPlane):
    """A plane that records nothing — the default everywhere.

    Identity-comparable (``plane is NOOP_TELEMETRY``); hot loops guard on
    :attr:`enabled` and skip their sampling entirely.
    """

    enabled = False

    def series(self, kind, component, metric, counter=False):  # type: ignore[override]
        return _NOOP_SERIES

    def record(self, kind, component, metric, t, value, counter=False) -> None:
        pass


#: The shared do-nothing telemetry plane.
NOOP_TELEMETRY = NoopTelemetry()


# ----------------------------------------------------------------------
# Export: the obs/export grammar (registry -> Prometheus, JSONL events)
# ----------------------------------------------------------------------

#: The ``stat`` label values a gauge-like series exports per window.
_EXPORT_STATS = ("last", "mean", "p95", "min", "max")


def telemetry_registry(
    plane: TelemetryPlane, registry: Optional[MetricsRegistry] = None
) -> MetricsRegistry:
    """Render the plane into a :class:`MetricsRegistry`.

    Counter series become ``telemetry_<kind>_<metric>`` counters holding
    the cumulative total; level series become gauges labeled
    ``{component=..., stat=last|mean|p95|min|max}`` over the most recent
    closed window (falling back to lifetime aggregates when no window has
    closed yet). The result renders through the exact same
    :func:`~repro.obs.export.render_prometheus` /
    :func:`~repro.obs.export.write_jsonl` grammar as every other metric.
    """
    registry = registry or MetricsRegistry()
    for series in plane:
        if series.counter:
            counter = registry.counter(series.name, component=series.component)
            counter.value = series.total
            continue
        windows = series.closed_windows()
        if windows:
            w = windows[-1]
            values = {
                "last": w.last,
                "mean": w.mean,
                "p95": w.p95,
                "min": w.vmin,
                "max": w.vmax,
            }
        else:
            values = {
                "last": series.last,
                "mean": series.mean,
                "p95": series.last,
                "min": series.vmin if series.count else 0.0,
                "max": series.vmax if series.count else 0.0,
            }
        for stat in _EXPORT_STATS:
            gauge = registry.gauge(series.name, component=series.component, stat=stat)
            gauge.value = values[stat]
    return registry


def iter_telemetry_events(plane: TelemetryPlane) -> Iterator[Dict[str, Any]]:
    """Yield one JSON-ready dict per series (windows included)."""
    for series in plane:
        yield series.to_dict()


def plane_from_events(events: List[Dict[str, Any]]) -> TelemetryPlane:
    """Rebuild a plane from parsed JSONL events (round-trip helper).

    The complement of :func:`iter_telemetry_events` as written by
    ``repro telemetry --out``; non-telemetry events are skipped so a
    mixed stream (metrics + telemetry) loads unchanged.
    """
    plane = TelemetryPlane()
    for event in events:
        if event.get("type") != "telemetry_series":
            continue
        window = float(event.get("window_s", 1.0))
        plane.window = window
        series = ComponentSeries(
            event["kind"],
            event["component"],
            event["metric"],
            window=window,
            capacity=max(plane.capacity, len(event.get("windows", ()))),
            counter=bool(event.get("counter", False)),
        )
        series.count = event.get("count", 0)
        series.total = event.get("sum", 0.0)
        series.vmin = event.get("min", 0.0) if series.count else float("inf")
        series.vmax = event.get("max", 0.0) if series.count else float("-inf")
        series.last = event.get("last", 0.0)
        series.last_at = event.get("last_at", 0.0)
        for w in event.get("windows", ()):
            series.windows.append(WindowStat.from_dict(w))
        plane._series[(series.kind, series.component, series.metric)] = series
    return plane


# ----------------------------------------------------------------------
# CLI rendering
# ----------------------------------------------------------------------


def render_tables(plane: TelemetryPlane, top: int = 10) -> str:
    """Per-component telemetry tables, one block per series kind."""
    lines: List[str] = []
    for kind in SERIES_KINDS:
        rows = _kind_rows(plane, kind)
        if not rows:
            continue
        if lines:
            lines.append("")
        lines.append(f"{kind} telemetry")
        lines.append("-" * len(lines[-1]))
        header = rows[0]
        widths = [
            max(len(str(r[i])) for r in rows) for i in range(len(header))
        ]
        for idx, row in enumerate(rows[: top + 1]):
            lines.append(
                "  ".join(str(c).ljust(w) for c, w in zip(row, widths)).rstrip()
            )
            if idx == 0:
                lines.append("  ".join("-" * w for w in widths))
        if len(rows) - 1 > top:
            lines.append(f"... and {len(rows) - 1 - top} more")
    summary = plane.summary()
    if lines:
        lines.append("")
    lines.append(
        f"{summary['series']} series, {summary['samples']} samples, "
        f"{summary['window_s']:g}s windows (ring capacity {summary['capacity']})"
    )
    return "\n".join(lines)


def _kind_rows(plane: TelemetryPlane, kind: str) -> List[Tuple[str, ...]]:
    """Table rows for one kind: component x metric summaries, worst first."""
    by_component: Dict[str, Dict[str, ComponentSeries]] = {}
    metrics: List[str] = []
    for series in plane:
        if series.kind != kind:
            continue
        by_component.setdefault(series.component, {})[series.metric] = series
        if series.metric not in metrics:
            metrics.append(series.metric)
    if not by_component:
        return []
    rows: List[Tuple[str, ...]] = [("component", *metrics)]

    def badness(component: str) -> float:
        return sum(
            s.peak_value() for s in by_component[component].values()
        )

    for component in sorted(by_component, key=lambda c: (-badness(c), c)):
        cells = [component]
        for metric in metrics:
            series = by_component[component].get(metric)
            if series is None or series.count == 0:
                cells.append("-")
            elif series.counter:
                cells.append(f"{series.total:g} (peak {series.peak_value():g}/win)")
            else:
                peak = series.peak_window()
                p95 = peak.p95 if peak else series.last
                cells.append(f"last {series.last:.4g} p95 {p95:.4g} max {series.vmax:.4g}")
        rows.append(tuple(cells))
    return rows
