"""Flamegraphs: collapsed stacks rendered as one self-contained SVG.

The :mod:`repro.obs.heatmap` discipline applied to profiles: no scripts,
no external assets, deterministic output — the same folded input always
renders the byte-identical SVG, so CI can diff artifacts and tests can
assert on bytes. Layout is the classic icicle: the root row spans the
full width, each frame's width is proportional to its folded value, and
children sit below their parent sorted by name (not by weight, which
would reshuffle the picture whenever two functions trade places by a
microsecond).

Colors are content-addressed: a frame's fill derives from a hash of its
name alone, so ``model/stability`` keeps its color across runs, PRs, and
machines. Span frames (pipeline phases — no ``:`` in the name) draw from
a cool ramp, function frames (``file.py:func``) from the traditional
warm ramp, which makes the phase band structurally obvious at the top of
every graph.
"""

from __future__ import annotations

import hashlib
import html as _html
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

#: Geometry shared by renderer and tests.
FRAME_HEIGHT = 17
_FONT_WIDTH = 6.6  # px per character at the 11px monospace label size
_MIN_FRAME_PX = 0.4  # frames narrower than this are pruned, not drawn

_STYLE = """
svg.flamegraph { background: #fafafa; border: 1px solid #ddd; }
.frame rect { stroke: #fafafa; stroke-width: 0.5; }
.frame text { font: 11px monospace; fill: #222; pointer-events: none; }
.fg-title { font: 14px system-ui, sans-serif; fill: #222; }
.fg-meta { font: 11px system-ui, sans-serif; fill: #777; }
"""


def parse_folded(lines: Iterable[str]) -> Dict[str, float]:
    """Parse ``stack value`` lines into a folded dict (summing repeats).

    Blank lines and ``#`` comments are skipped; a line whose last field
    is not a number raises ``ValueError`` naming the line.
    """
    out: Dict[str, float] = {}
    for raw in lines:
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        stack, _, value = line.rpartition(" ")
        if not stack:
            raise ValueError(f"malformed folded line (no value field): {raw!r}")
        try:
            weight = float(value)
        except ValueError as exc:
            raise ValueError(f"malformed folded value in line {raw!r}") from exc
        out[stack] = out.get(stack, 0.0) + weight
    return out


class _Frame:
    """One node of the flame tree."""

    __slots__ = ("name", "value", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.children: Dict[str, "_Frame"] = {}

    def child(self, name: str) -> "_Frame":
        node = self.children.get(name)
        if node is None:
            node = _Frame(name)
            self.children[name] = node
        return node


def _build_tree(folded: Mapping[str, float], root_name: str) -> _Frame:
    root = _Frame(root_name)
    for stack, value in folded.items():
        if value <= 0.0:
            continue
        node = root
        node.value += value
        for part in stack.split(";"):
            node = node.child(part)
            node.value += value
    return root


def frame_color(name: str) -> str:
    """The deterministic fill color for a frame name.

    Function frames (containing ``:``) map into the warm
    red-orange-yellow flamegraph ramp; span/phase frames map into a cool
    blue-green ramp so the pipeline structure reads at a glance. Only the
    name participates — no randomness, no run state.
    """
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    v1, v2 = digest[0] / 255.0, digest[1] / 255.0
    if ":" in name:
        r = 205 + int(50 * v1)
        g = int(200 * v2)
        b = int(55 * v1)
    else:
        r = int(70 * v2)
        g = 120 + int(80 * v1)
        b = 160 + int(70 * v2)
    return f"#{r:02x}{g:02x}{b:02x}"


def _esc(text: object) -> str:
    return _html.escape(str(text), quote=True)


def _label(name: str, width: float) -> Optional[str]:
    """The frame's visible text, truncated to fit, or None if too narrow."""
    budget = int((width - 6) / _FONT_WIDTH)
    if budget < 3:
        return None
    if len(name) <= budget:
        return name
    return name[: budget - 2] + ".."


def flamegraph_svg(
    folded: Mapping[str, float],
    title: str = "repro flamegraph",
    width: int = 1200,
    root_name: str = "all",
    unit: str = "µs",
) -> str:
    """Render folded stacks as a deterministic, self-contained SVG.

    Determinism contract: equal ``folded`` content (regardless of dict
    insertion order) yields byte-identical output. Children are laid out
    sorted by name, coordinates are fixed-precision, and colors hash from
    frame names only.
    """
    root = _build_tree(folded, root_name)
    total = root.value

    # Depth-first layout, children alphabetical, self time leading.
    frames: List[Tuple[int, float, float, _Frame]] = []  # (depth, x, w, frame)
    max_depth = 0

    def place(frame: _Frame, depth: int, x: float, w: float) -> None:
        nonlocal max_depth
        if w < _MIN_FRAME_PX:
            return
        frames.append((depth, x, w, frame))
        max_depth = max(max_depth, depth)
        child_x = x
        for name in sorted(frame.children):
            child = frame.children[name]
            child_w = w * (child.value / frame.value) if frame.value else 0.0
            place(child, depth + 1, child_x, child_w)
            child_x += child_w

    if total > 0:
        place(root, 0, 0.0, float(width))

    header = 34
    height = header + (max_depth + 1) * FRAME_HEIGHT + 10
    out: List[str] = [
        f'<svg class="flamegraph" viewBox="0 0 {width} {height}" '
        f'width="{width}" height="{height}" '
        'xmlns="http://www.w3.org/2000/svg" role="img" '
        f'aria-label="{_esc(title)}">',
        f"<style>{_STYLE}</style>",
        f'<text class="fg-title" x="8" y="18">{_esc(title)}</text>',
        f'<text class="fg-meta" x="8" y="30">total {total:.0f} {_esc(unit)} '
        f"&#183; {len(folded)} stacks</text>",
    ]
    for depth, x, w, frame in frames:
        y = header + depth * FRAME_HEIGHT
        share = frame.value / total if total else 0.0
        tip = (
            f"{frame.name}: {frame.value:.0f} {unit} ({share * 100:.2f}%)"
        )
        out.append(
            f'<g class="frame" data-name="{_esc(frame.name)}">'
            f'<rect x="{x:.2f}" y="{y}" width="{w:.2f}" '
            f'height="{FRAME_HEIGHT - 1}" fill="{frame_color(frame.name)}">'
            f"<title>{_esc(tip)}</title></rect>"
        )
        label = _label(frame.name, w)
        if label is not None:
            out.append(
                f'<text x="{x + 3:.2f}" y="{y + 12}">{_esc(label)}</text>'
            )
        out.append("</g>")
    out.append("</svg>")
    return "\n".join(out)


def save_flamegraph(path: str, folded: Mapping[str, float], **kwargs: Any) -> None:
    """Write the flamegraph SVG for ``folded`` to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(flamegraph_svg(folded, **kwargs))
