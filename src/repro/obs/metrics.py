"""Process-local metrics: counters, gauges, and fixed-bucket histograms.

FlowDiff's premise is passive, always-on observation of someone else's
control plane; this module is the same idea turned inward. Every layer of
the reproduction (simulator, switches, controller, modeling pipeline)
accepts a :class:`MetricsRegistry` and records what it does, so scale and
performance questions ("where do events go?", "what is the table miss
rate?") are answered by reading metrics instead of re-running under a
profiler.

Design constraints, in order:

1. **Hot-path cheap.** Instruments are plain attribute math on
   ``__slots__`` objects — no locks, no string formatting, no allocation
   per observation. Callers hold the instrument object directly rather
   than looking it up per event.
2. **Zero cost when off.** The default everywhere is :data:`NOOP_REGISTRY`,
   whose instruments are shared null objects; an uninstrumented run pays
   one no-op method call per observation point at most, and hot loops can
   skip even that by testing :attr:`MetricsRegistry.enabled`.
3. **No dependencies.** Rendering to Prometheus text or JSONL lives in
   :mod:`repro.obs.export`; this module is dicts and floats only.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.obs.names import validate_label_name, validate_metric_name

#: ``(name, sorted-label-items)`` — the registry key of one instrument.
MetricKey = Tuple[str, Tuple[Tuple[str, str], ...]]

#: Default histogram buckets (seconds): 100 µs .. 30 s, roughly log-spaced.
#: Chosen to resolve both controller response times (sub-millisecond) and
#: whole-pipeline phases (seconds) without per-call configuration.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
)


def _label_key(labels: Dict[str, str]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "labels", "value")
    kind = "counter"

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...] = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (default 1) to the running total."""
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}{dict(self.labels)}={self.value})"


class Gauge:
    """A point-in-time value that can move both ways."""

    __slots__ = ("name", "labels", "value")
    kind = "gauge"

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...] = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current level."""
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        """Shift the level by ``amount`` (may be negative)."""
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name}{dict(self.labels)}={self.value})"


class Histogram:
    """A fixed-bucket cumulative histogram with sum/count/min/max.

    Buckets are upper bounds; an implicit ``+Inf`` bucket catches the
    overflow, so ``sum(counts) == count`` always holds. Bucket counts are
    *per bucket* here (simpler to update); the Prometheus renderer
    accumulates them into the cumulative form that format requires.
    """

    __slots__ = ("name", "labels", "bounds", "counts", "count", "total", "min", "max")
    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: Tuple[Tuple[str, str], ...] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.name = name
        self.labels = labels
        self.bounds = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        """Record one observation."""
        # bisect_left: a value equal to a bound belongs to that bucket
        # (Prometheus ``le`` semantics).
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile: the upper bound of the covering bucket.

        Coarse by construction (histograms forget exact values); good
        enough for "p99 callback latency" style questions. Returns the
        recorded max for the overflow bucket, 0 when empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        for i, n in enumerate(self.counts):
            seen += n
            if seen >= target and n:
                return self.bounds[i] if i < len(self.bounds) else self.max
        return self.max

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Histogram({self.name}{dict(self.labels)} "
            f"count={self.count} mean={self.mean:.6f})"
        )


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """A process-local, dependency-free metrics registry.

    Instruments are identified by ``(name, labels)``; asking twice returns
    the same object, so hot paths fetch once and keep the reference::

        reg = MetricsRegistry()
        events = reg.counter("sim_events_total")
        for ...:
            events.inc()

    Asking for an existing name with a different instrument kind is a
    programming error and raises immediately.
    """

    #: Hot loops test this instead of paying even a no-op call.
    enabled = True

    def __init__(self) -> None:
        self._instruments: Dict[MetricKey, Instrument] = {}

    # -- instrument factories ------------------------------------------

    def counter(self, name: str, **labels: str) -> Counter:
        """Get or create the counter ``name`` with ``labels``."""
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        """Get or create the gauge ``name`` with ``labels``."""
        return self._get_or_create(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        **labels: str,
    ) -> Histogram:
        """Get or create the histogram ``name`` with ``labels``.

        ``buckets`` applies only on first creation; later calls reuse the
        existing instrument unchanged.
        """
        key = (name, _label_key(labels))
        found = self._instruments.get(key)
        if found is not None:
            if not isinstance(found, Histogram):
                raise TypeError(
                    f"metric {name!r} already registered as {found.kind}"
                )
            return found
        self._validate(name, labels)
        made = Histogram(name, key[1], buckets=buckets or DEFAULT_BUCKETS)
        self._instruments[key] = made
        return made

    @staticmethod
    def _validate(name: str, labels: Dict[str, str]) -> None:
        """Reject illegal Prometheus names at creation time (never per
        observation — lookups of an existing instrument skip this)."""
        validate_metric_name(name)
        for label in labels:
            validate_label_name(label)

    def _get_or_create(self, cls, name: str, labels: Dict[str, str]):
        key = (name, _label_key(labels))
        found = self._instruments.get(key)
        if found is not None:
            if not isinstance(found, cls):
                raise TypeError(
                    f"metric {name!r} already registered as {found.kind}"
                )
            return found
        self._validate(name, labels)
        made = cls(name, key[1])
        self._instruments[key] = made
        return made

    # -- introspection --------------------------------------------------

    def __iter__(self) -> Iterator[Instrument]:
        """All instruments, sorted by (name, labels) for stable output."""
        return iter(sorted(self._instruments.values(), key=lambda m: (m.name, m.labels)))

    def __len__(self) -> int:
        return len(self._instruments)

    def get(self, name: str, **labels: str) -> Optional[Instrument]:
        """The instrument at ``(name, labels)``, or None."""
        return self._instruments.get((name, _label_key(labels)))

    def value(self, name: str, **labels: str) -> float:
        """Shortcut: the scalar value of a counter/gauge (0.0 if absent)."""
        found = self.get(name, **labels)
        if found is None:
            return 0.0
        if isinstance(found, Histogram):
            return float(found.count)
        return found.value

    def total(self, name: str) -> float:
        """Sum a counter/gauge across all label sets (histograms: counts)."""
        out = 0.0
        for metric in self._instruments.values():
            if metric.name != name:
                continue
            out += float(metric.count) if isinstance(metric, Histogram) else metric.value
        return out

    def snapshot(self) -> Dict[str, float]:
        """A flat ``{"name{a=b}": value}`` dict — convenient in tests."""
        out: Dict[str, float] = {}
        for metric in self:
            label_text = ",".join(f"{k}={v}" for k, v in metric.labels)
            key = f"{metric.name}{{{label_text}}}" if label_text else metric.name
            if isinstance(metric, Histogram):
                out[key + "_count"] = float(metric.count)
                out[key + "_sum"] = metric.total
            else:
                out[key] = metric.value
        return out


class _NoopInstrument:
    """One shared null object standing in for every instrument kind."""

    __slots__ = ()
    kind = "noop"
    name = "noop"
    labels: Tuple[Tuple[str, str], ...] = ()
    value = 0.0
    count = 0
    total = 0.0
    mean = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0


_NOOP_INSTRUMENT = _NoopInstrument()


class NoopRegistry(MetricsRegistry):
    """A registry that records nothing — the default everywhere.

    Uninstrumented callers share :data:`NOOP_REGISTRY` so the observability
    hooks cost a single no-op method call (or nothing at all where the hot
    loop guards on :attr:`enabled`).
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def counter(self, name: str, **labels: str):  # type: ignore[override]
        return _NOOP_INSTRUMENT

    def gauge(self, name: str, **labels: str):  # type: ignore[override]
        return _NOOP_INSTRUMENT

    def histogram(self, name: str, buckets=None, **labels: str):  # type: ignore[override]
        return _NOOP_INSTRUMENT


#: The shared do-nothing registry; identity-comparable (`is NOOP_REGISTRY`).
NOOP_REGISTRY = NoopRegistry()
