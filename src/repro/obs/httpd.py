"""A read-only stdlib HTTP endpoint over the observability surfaces.

The first concrete step toward the roadmap's always-on streaming service:
a tiny operational endpoint an operator (or a scrape loop) can point a
browser at while an experiment runs. Five routes, all read-only:

* ``/healthz``    — liveness plus a one-look summary (series, alerts);
* ``/metrics``    — Prometheus text exposition of the metrics registry
  and the telemetry plane, through the normal export grammar;
* ``/telemetry``  — the plane's series with their windows, as JSON;
* ``/alerts``     — every fired alert, as JSON;
* ``/runs``       — run-ledger record summaries (``/runs?id=PREFIX``
  for one full record, folded profile included).

``GET`` and ``HEAD`` are both served — ``HEAD`` returns the same status
and headers (including the exact ``Content-Length``) with no body, so
probes and load balancers can poll cheaply. Any mutating verb is
answered ``405`` with an ``Allow: GET, HEAD`` header, and nothing in the
handler mutates the observed state. Built on
:class:`http.server.ThreadingHTTPServer` only — no new dependencies —
and binds an ephemeral port by default so tests and parallel runs never
collide.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.obs.alerts import AlertEngine
from repro.obs.export import render_prometheus
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import (
    NOOP_TELEMETRY,
    TelemetryPlane,
    iter_telemetry_events,
    telemetry_registry,
)

if TYPE_CHECKING:
    from repro.obs.ledger import RunLedger


class ObsState:
    """What the endpoint exposes: registry, telemetry plane, alert
    engine, and optionally a run ledger.

    A thin aggregate so the server reads one object; every field is
    optional and read at request time, so a live simulation's plane keeps
    streaming into the same pages an operator is refreshing.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        telemetry: TelemetryPlane = NOOP_TELEMETRY,
        engine: Optional[AlertEngine] = None,
        ledger: Optional["RunLedger"] = None,
    ) -> None:
        self.registry = registry
        self.telemetry = telemetry
        self.engine = engine
        self.ledger = ledger
        #: Extra GET routes consulted before 404: path → callable taking
        #: the parsed query (``Dict[str, List[str]]``) and returning
        #: ``(status, json_payload)``. How subsystems (the streaming
        #: service) add pages without subclassing the handler.
        self.routes: Dict[
            str, Callable[[Dict[str, List[str]]], Tuple[int, Any]]
        ] = {}

    def health(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"status": "ok"}
        if self.telemetry is not NOOP_TELEMETRY:
            payload["telemetry"] = self.telemetry.summary()
        if self.engine is not None:
            payload["alerts"] = len(self.engine.alerts)
            worst = self.engine.worst_severity()
            payload["worst_severity"] = str(worst) if worst is not None else None
        return payload

    def prometheus(self) -> str:
        chunks: List[str] = []
        if self.registry is not None:
            chunks.append(render_prometheus(self.registry))
        if self.telemetry is not NOOP_TELEMETRY:
            chunks.append(render_prometheus(telemetry_registry(self.telemetry)))
        return "\n".join(c for c in chunks if c) or "\n"

    def telemetry_json(self) -> List[Dict[str, Any]]:
        return list(iter_telemetry_events(self.telemetry))

    def alerts_json(self) -> List[Dict[str, Any]]:
        if self.engine is None:
            return []
        return [a.to_dict() for a in self.engine.alerts]

    def runs_json(self, record_prefix: Optional[str] = None) -> Tuple[int, Any]:
        """``(status, payload)`` for the ``/runs`` route.

        Without a prefix: every record's summary row (cheap — folded
        profiles are omitted). With one: the full matching record,
        ``404`` when nothing matches, ``400`` when ambiguous.
        """
        if self.ledger is None:
            return 200, {"records": []}
        if record_prefix is None:
            return 200, {
                "records": [r.summary() for r in self.ledger.records()]
            }
        try:
            record = self.ledger.get(record_prefix)
        except KeyError as exc:
            code = 400 if "ambiguous" in str(exc) else 404
            return code, {"error": str(exc)}
        return 200, record.to_dict()


class _Handler(BaseHTTPRequestHandler):
    """Route the read-only pages; refuse everything else."""

    server_version = "repro-obs/1"
    #: Injected by :class:`ObsHTTPServer` at server construction.
    state: ObsState

    def _respond(self, include_body: bool) -> None:
        """Shared GET/HEAD routing; HEAD sends headers only."""
        parts = urlsplit(self.path)
        path = parts.path.rstrip("/") or "/"
        if path in ("/", "/healthz"):
            self._json(200, self.state.health(), include_body)
        elif path == "/metrics":
            body = self.state.prometheus().encode("utf-8")
            self._raw(
                200,
                body,
                "text/plain; version=0.0.4; charset=utf-8",
                include_body,
            )
        elif path == "/telemetry":
            self._json(200, self.state.telemetry_json(), include_body)
        elif path == "/alerts":
            self._json(200, self.state.alerts_json(), include_body)
        elif path == "/runs":
            query = parse_qs(parts.query)
            prefix = query.get("id", [None])[0]
            code, payload = self.state.runs_json(prefix)
            self._json(code, payload, include_body)
        else:
            route = self.state.routes.get(path)
            if route is not None:
                code, payload = route(parse_qs(parts.query))
                self._json(code, payload, include_body)
            else:
                self._json(404, {"error": f"unknown path {path!r}"}, include_body)

    def do_GET(self) -> None:  # noqa: N802 - http.server naming convention
        self._respond(include_body=True)

    def do_HEAD(self) -> None:  # noqa: N802 - http.server naming convention
        """Same status and headers as GET — Content-Length included —
        with no body, so liveness probes don't pay for payloads."""
        self._respond(include_body=False)

    def _refuse_write(self) -> None:
        body = json.dumps({"error": "read-only endpoint"}).encode("utf-8")
        self.send_response(405)
        self.send_header("Allow", "GET, HEAD")
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    # Every mutating verb is refused identically.
    do_POST = _refuse_write
    do_PUT = _refuse_write
    do_DELETE = _refuse_write
    do_PATCH = _refuse_write

    def _json(self, code: int, payload: Any, include_body: bool = True) -> None:
        self._raw(
            code,
            json.dumps(payload, indent=2).encode("utf-8"),
            "application/json",
            include_body,
        )

    def _raw(
        self, code: int, body: bytes, content_type: str, include_body: bool = True
    ) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        if include_body:
            self.wfile.write(body)

    def log_message(self, format: str, *args: Any) -> None:
        """Silence per-request stderr chatter (the CLI reports the URL)."""


class ObsHTTPServer:
    """The ops endpoint: a daemon-threaded ``ThreadingHTTPServer``.

    Usage::

        server = ObsHTTPServer(ObsState(registry, plane, engine))
        host, port = server.start()
        ... # GET http://host:port/healthz
        server.stop()

    ``port=0`` (the default) binds an ephemeral port, reported by
    :meth:`start` — safe under parallel tests and repeated CLI runs.
    """

    def __init__(
        self, state: ObsState, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        handler = type("_BoundHandler", (_Handler,), {"state": state})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    def url(self, path: str = "/") -> str:
        host, port = self.address
        return f"http://{host}:{port}{path}"

    def start(self) -> Tuple[str, int]:
        """Serve in a daemon thread; returns the bound (host, port)."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-obs-httpd", daemon=True
        )
        self._thread.start()
        return self.address

    def stop(self) -> None:
        """Shut the server down and join its thread."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "ObsHTTPServer":
        self.start()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.stop()
