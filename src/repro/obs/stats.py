"""Controller-log statistics: message mix, rates, and top talkers.

Backs the ``repro stats`` subcommand: a fast first look at a capture
(what's in it, how hot is the control channel, who generates the load)
without paying for a full model/diff. Also provides
:func:`record_log_metrics`, which folds a log's message counts into a
:class:`~repro.obs.metrics.MetricsRegistry` so exported telemetry can be
reconciled against the capture it came from.
"""

from __future__ import annotations

from collections import Counter as TallyCounter
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.openflow.log import ControllerLog
from repro.openflow.messages import (
    EchoRequest,
    FlowMod,
    FlowRemoved,
    FlowStatsReply,
    PacketIn,
    PacketOut,
    PortStatus,
)

#: Message class -> the snake_case kind label used in metrics and output.
MESSAGE_KINDS: Tuple[Tuple[type, str], ...] = (
    (PacketIn, "packet_in"),
    (PacketOut, "packet_out"),
    (FlowMod, "flow_mod"),
    (FlowRemoved, "flow_removed"),
    (PortStatus, "port_status"),
    (FlowStatsReply, "flow_stats_reply"),
    (EchoRequest, "echo_request"),
)

_KIND_OF = {cls: kind for cls, kind in MESSAGE_KINDS}


@dataclass(frozen=True)
class LogSummary:
    """Everything ``repro stats`` prints, as data.

    Attributes:
        messages: total control messages.
        span: ``(first, last)`` message timestamps.
        by_kind: message count per kind label (zero-count kinds included).
        rates: messages/second per kind over the span.
        top_talkers: ``(source host, PacketIn count)`` descending.
        top_switches: ``(dpid, message count)`` descending.
        unanswered_packet_ins: PacketIns with no later FlowMod reply
            (``in_reply_to`` pairing) — the controller-failure smell.
    """

    messages: int
    span: Tuple[float, float]
    by_kind: Dict[str, int] = field(default_factory=dict)
    rates: Dict[str, float] = field(default_factory=dict)
    top_talkers: Tuple[Tuple[str, int], ...] = ()
    top_switches: Tuple[Tuple[str, int], ...] = ()
    unanswered_packet_ins: int = 0

    @property
    def duration(self) -> float:
        return max(0.0, self.span[1] - self.span[0])


def summarize_log(log: ControllerLog, top: int = 5) -> LogSummary:
    """Compute the :class:`LogSummary` of a capture in one pass."""
    by_kind = {kind: 0 for _, kind in MESSAGE_KINDS}
    talkers: TallyCounter = TallyCounter()
    switches: TallyCounter = TallyCounter()
    replied: set = set()
    packet_in_ids: List[int] = []
    for msg in log:
        kind = _KIND_OF.get(type(msg))
        if kind is not None:
            by_kind[kind] += 1
        switches[msg.dpid] += 1
        if type(msg) is PacketIn:
            talkers[msg.flow.src] += 1
            packet_in_ids.append(msg.buffer_id)
        elif type(msg) is FlowMod and msg.in_reply_to is not None:
            replied.add(msg.in_reply_to)

    span = log.time_span
    duration = max(0.0, span[1] - span[0])
    rates = {
        kind: (count / duration if duration > 0 else 0.0)
        for kind, count in by_kind.items()
    }
    unanswered = sum(1 for bid in packet_in_ids if bid not in replied)
    return LogSummary(
        messages=len(log),
        span=span,
        by_kind=by_kind,
        rates=rates,
        top_talkers=tuple(talkers.most_common(top)),
        top_switches=tuple(switches.most_common(top)),
        unanswered_packet_ins=unanswered,
    )


def render_summary(summary: LogSummary, name: str = "capture") -> str:
    """Format a :class:`LogSummary` as the ``repro stats`` report."""
    t0, t1 = summary.span
    lines = [
        f"{name}: {summary.messages} control messages over "
        f"[{t0:.2f}, {t1:.2f}]s ({summary.duration:.2f}s)",
        "",
        f"  {'message kind':<18} {'count':>8} {'rate/s':>10}",
    ]
    for kind, count in sorted(
        summary.by_kind.items(), key=lambda kv: (-kv[1], kv[0])
    ):
        if count == 0:
            continue
        lines.append(f"  {kind:<18} {count:>8} {summary.rates[kind]:>10.2f}")
    if summary.unanswered_packet_ins:
        lines.append(
            f"  unanswered PacketIn: {summary.unanswered_packet_ins} "
            "(no FlowMod reply — controller gap?)"
        )
    if summary.top_talkers:
        lines.append("")
        lines.append("  top talkers (PacketIn sources):")
        for host, count in summary.top_talkers:
            lines.append(f"    {host:<12} {count:>8}")
    if summary.top_switches:
        lines.append("")
        lines.append("  busiest switches (all messages):")
        for dpid, count in summary.top_switches:
            lines.append(f"    {dpid:<12} {count:>8}")
    return "\n".join(lines)


def record_log_metrics(
    registry: MetricsRegistry, log: ControllerLog, role: str = "current"
) -> None:
    """Fold a capture's message counts into ``registry``.

    Emits ``log_messages_total{kind=..., role=...}`` counters (one per
    message kind, including zeros, so consumers can rely on presence) and
    a ``log_span_seconds{role=...}`` gauge. The counters reconcile exactly
    with the log: ``log_messages_total{kind="packet_in"}`` equals
    ``len(log.packet_ins())`` by construction, which the telemetry tests
    assert end to end.
    """
    summary = summarize_log(log, top=0)
    for kind, count in summary.by_kind.items():
        registry.counter("log_messages_total", kind=kind, role=role).inc(count)
    registry.gauge("log_span_seconds", role=role).set(summary.duration)
    registry.gauge("log_messages", role=role).set(summary.messages)
