"""Telemetry export: JSONL event streams and Prometheus text format.

Two render targets, one registry:

* **JSONL** — one self-describing JSON object per line per instrument
  (plus one per trace span), append-friendly and trivially diffable; this
  is what ``--metrics-out`` writes and what the benchmark trajectory
  (``BENCH_*.json``) is built from.
* **Prometheus text exposition format** — so a scrape endpoint (or a
  ``textfile`` collector drop) can serve the same registry unchanged.
  Histograms are rendered cumulatively with the conventional
  ``_bucket``/``_sum``/``_count`` triple.
"""

from __future__ import annotations

import json
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterator,
    List,
    Optional,
    TextIO,
    Union,
)

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.names import escape_label_value, validate_metric_name
from repro.obs.tracing import Tracer

if TYPE_CHECKING:  # pragma: no cover - avoid an import cycle at runtime
    from repro.obs.telemetry import TelemetryPlane


def iter_metric_events(registry: MetricsRegistry) -> Iterator[Dict[str, Any]]:
    """Yield one JSON-ready dict per instrument in the registry."""
    for metric in registry:
        event: Dict[str, Any] = {
            "type": metric.kind,
            "name": metric.name,
            "labels": dict(metric.labels),
        }
        if isinstance(metric, (Counter, Gauge)):
            event["value"] = metric.value
        elif isinstance(metric, Histogram):
            event["count"] = metric.count
            event["sum"] = metric.total
            event["buckets"] = [
                {"le": bound, "n": n}
                for bound, n in zip(metric.bounds, metric.counts)
            ]
            event["buckets"].append({"le": "+Inf", "n": metric.counts[-1]})
            if metric.count:
                event["min"] = metric.min
                event["max"] = metric.max
                event["mean"] = metric.mean
        yield event


def iter_span_events(tracer: Tracer) -> Iterator[Dict[str, Any]]:
    """Yield one JSON-ready dict per span (flattened, with depth)."""

    def visit(span, depth: int, path: str) -> Iterator[Dict[str, Any]]:
        full = f"{path}/{span.name}" if path else span.name
        event: Dict[str, Any] = {
            "type": "span",
            "name": span.name,
            "path": full,
            "depth": depth,
            "duration_s": span.duration,
            "self_duration_s": span.self_duration,
        }
        if span.sim_duration is not None:
            event["sim_duration_s"] = span.sim_duration
        if span.meta:
            event["meta"] = dict(span.meta)
        yield event
        for child in span.children:
            yield from visit(child, depth + 1, full)

    for root in tracer.roots:
        yield from visit(root, 0, "")


def write_jsonl(
    destination: Union[str, TextIO],
    registry: MetricsRegistry,
    tracer: Optional[Tracer] = None,
    extra: Optional[Dict[str, Any]] = None,
    telemetry: Optional["TelemetryPlane"] = None,
) -> int:
    """Write the registry (and optionally a trace) as JSON lines.

    Args:
        destination: a path or an open text file.
        registry: the metrics to dump.
        tracer: when given, span events follow the metric events.
        extra: when given, an initial ``{"type": "meta", ...}`` line.
        telemetry: when given, one ``telemetry_series`` event per series
            follows (windows included); recover them with
            :func:`~repro.obs.telemetry.plane_from_events`.

    Returns:
        The number of lines written.
    """
    events: List[Dict[str, Any]] = []
    if extra:
        events.append({"type": "meta", **extra})
    events.extend(iter_metric_events(registry))
    if tracer is not None:
        events.extend(iter_span_events(tracer))
    if telemetry is not None:
        from repro.obs.telemetry import iter_telemetry_events

        events.extend(iter_telemetry_events(telemetry))

    if isinstance(destination, str):
        with open(destination, "w", encoding="utf-8") as fh:
            for event in events:
                fh.write(json.dumps(event) + "\n")
    else:
        for event in events:
            destination.write(json.dumps(event) + "\n")
    return len(events)


def read_jsonl(source: Union[str, TextIO]) -> List[Dict[str, Any]]:
    """Parse a JSONL telemetry stream back into event dicts.

    The complement of :func:`write_jsonl`, used by tests and by tooling
    that post-processes ``--metrics-out`` files. Blank lines are skipped.
    """
    if isinstance(source, str):
        with open(source, encoding="utf-8") as fh:
            text = fh.read()
    else:
        text = source.read()
    events = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ValueError(f"bad telemetry JSON on line {lineno}: {exc}") from exc
    return events


def metrics_from_events(events: List[Dict[str, Any]]) -> MetricsRegistry:
    """Rebuild a registry from parsed JSONL events (round-trip helper)."""
    registry = MetricsRegistry()
    for event in events:
        labels = event.get("labels", {})
        kind = event.get("type")
        if kind == "counter":
            registry.counter(event["name"], **labels).value = event["value"]
        elif kind == "gauge":
            registry.gauge(event["name"], **labels).value = event["value"]
        elif kind == "histogram":
            bounds = [b["le"] for b in event["buckets"] if b["le"] != "+Inf"]
            hist = registry.histogram(event["name"], buckets=bounds, **labels)
            hist.counts = [b["n"] for b in event["buckets"]]
            hist.count = event["count"]
            hist.total = event["sum"]
            hist.min = event.get("min", float("inf"))
            hist.max = event.get("max", float("-inf"))
    return registry


# ----------------------------------------------------------------------
# Prometheus text exposition format
# ----------------------------------------------------------------------


def _format_value(value: float) -> str:
    value = float(value)
    if value != value:  # NaN never equals itself
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if value.is_integer():
        return str(int(value))
    return repr(value)


def _format_labels(labels, extra: str = "") -> str:
    # Label-value escaping is shared with the naming module so the lint
    # rule, the registry, and this renderer agree on one grammar.
    parts = [f'{k}="{escape_label_value(v)}"' for k, v in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def render_prometheus(registry: MetricsRegistry) -> str:
    """Render every instrument in Prometheus text exposition format.

    Counters get a ``_total``-less passthrough of their registered name
    (names in this codebase already follow the ``_total`` convention);
    histograms become the cumulative ``_bucket``/``_sum``/``_count``
    triple Prometheus expects. Metric names are validated with the shared
    validator (:mod:`repro.obs.names`) so a registry assembled outside
    the normal factories still cannot emit an unscrapable exposition.

    Raises:
        ValueError: when an instrument carries an illegal metric name.
    """
    lines: List[str] = []
    typed: set = set()
    for metric in registry:
        validate_metric_name(metric.name)
        if metric.name not in typed:
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            typed.add(metric.name)
        if isinstance(metric, (Counter, Gauge)):
            lines.append(
                f"{metric.name}{_format_labels(metric.labels)} "
                f"{_format_value(metric.value)}"
            )
        elif isinstance(metric, Histogram):
            cumulative = 0
            for bound, n in zip(metric.bounds, metric.counts):
                cumulative += n
                le = 'le="%s"' % _format_value(bound)
                lines.append(
                    f"{metric.name}_bucket{_format_labels(metric.labels, le)} {cumulative}"
                )
            cumulative += metric.counts[-1]
            inf_le = 'le="+Inf"'
            lines.append(
                f"{metric.name}_bucket{_format_labels(metric.labels, inf_le)} {cumulative}"
            )
            lines.append(
                f"{metric.name}_sum{_format_labels(metric.labels)} "
                f"{_format_value(metric.total)}"
            )
            lines.append(
                f"{metric.name}_count{_format_labels(metric.labels)} {metric.count}"
            )
    return "\n".join(lines) + ("\n" if lines else "")
