"""The always-on service: multi-tenant ingest behind a bounded queue.

:class:`StreamService` hosts any number of :class:`TenantPipeline`\\ s in
one process. Producers — file tails, in-process simulator feeds, tests —
hand message batches to :meth:`StreamService.feed`; a single drain thread
serializes them into the per-tenant pipelines, so the heavy pipeline
work runs lock-free. The queue is bounded: a blocking producer experiences
backpressure, a non-blocking one gets its batch dropped with explicit
``service_dropped_total{reason="backpressure"}`` accounting — ingest
never buffers unboundedly.

:class:`FileTailSource` adapts a JSONL capture file (the
:mod:`repro.openflow.serialize` format) into the feed, optionally
following the file as a live producer appends to it — the daemon
equivalent of ``tail -f`` on a controller capture.

Thread model: producers (main thread, tail threads) call :meth:`feed`,
the drain thread mutates pipelines, and the HTTP thread reads snapshots.
``StreamService._lock`` guards the tenant map, the error tail, and the
queue-depth counter; everything heavier happens outside it. The HTTP
surface must use the snapshot accessors (:meth:`get_tenant`,
:meth:`tenant_items`, :meth:`recent_errors`), never the raw containers.
"""

from __future__ import annotations

import json
import queue
import threading
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.flowdiff import FlowDiffConfig
from repro.obs.alerts import AlertEngine, default_rules
from repro.obs.metrics import MetricsRegistry
from repro.openflow.messages import ControlMessage
from repro.openflow.serialize import message_from_json
from repro.service.tenant import TenantPipeline

#: Sentinel telling the drain thread to exit.
_STOP = object()


class StreamService:
    """Own the tenants, the ingest queue, and the drain thread.

    Args:
        config: FlowDiff tunables shared by tenants (overridable per
            tenant via :meth:`add_tenant`).
        window: default diagnosis window seconds per tenant.
        baseline_span: default baseline-learning span; defaults to
            ``window``.
        slices: default incremental sub-intervals per window.
        metrics: the service registry — one per process, every instrument
            tenant-labeled; a fresh registry is created when omitted.
        checkpoint_dir: directory for per-tenant checkpoints and the
            baseline model cache.
        max_pending: ingest queue capacity in batches; beyond it,
            blocking feeds wait and non-blocking feeds drop.
        rebaseline_after: default re-anchoring policy per tenant.
        history_limit/trace_capacity: per-tenant memory bounds.
    """

    def __init__(
        self,
        config: Optional[FlowDiffConfig] = None,
        *,
        window: float = 30.0,
        baseline_span: Optional[float] = None,
        slices: int = 4,
        metrics: Optional[MetricsRegistry] = None,
        checkpoint_dir: Optional[str] = None,
        max_pending: int = 64,
        rebaseline_after: int = 0,
        history_limit: int = 256,
        trace_capacity: int = 4096,
    ) -> None:
        self.config = config
        self.window = window
        self.baseline_span = baseline_span
        self.slices = slices
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.checkpoint_dir = checkpoint_dir
        self.rebaseline_after = rebaseline_after
        self.history_limit = history_limit
        self.trace_capacity = trace_capacity
        self.tenants: Dict[str, TenantPipeline] = {}
        self.errors: List[str] = []

        self._queue: "queue.Queue[object]" = queue.Queue(maxsize=max_pending)
        self._depth_msgs = 0
        #: Guards ``tenants``, ``errors``, and ``_depth_msgs`` — the only
        #: state shared between producers, the drain thread, and HTTP.
        self._lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None
        self._m_depth = self.metrics.gauge("service_queue_depth")
        self._m_tenants = self.metrics.gauge("service_tenants")

    # -- tenants ---------------------------------------------------------

    def add_tenant(self, name: str, **overrides: object) -> TenantPipeline:
        """Register a tenant pipeline (with its own alert engine).

        Keyword overrides are forwarded to :class:`TenantPipeline` on top
        of the service defaults.
        """
        with self._lock:
            if name in self.tenants:
                raise ValueError(f"tenant {name!r} already registered")
        kwargs: Dict[str, object] = {
            "window": self.window,
            "baseline_span": self.baseline_span,
            "slices": self.slices,
            "metrics": self.metrics,
            "alert_engine": AlertEngine(default_rules()),
            "checkpoint_dir": self.checkpoint_dir,
            "rebaseline_after": self.rebaseline_after,
            "history_limit": self.history_limit,
            "trace_capacity": self.trace_capacity,
        }
        kwargs.update(overrides)
        # Construction is heavy (checkpoint restore does file I/O), so it
        # happens outside the lock; the insert re-checks for a racing
        # registration of the same name.
        tenant = TenantPipeline(name, self.config, **kwargs)  # type: ignore[arg-type]
        with self._lock:
            if name in self.tenants:
                raise ValueError(f"tenant {name!r} already registered")
            self.tenants[name] = tenant
            count = len(self.tenants)
        self._m_tenants.set(float(count))
        return tenant

    def get_tenant(self, name: str) -> Optional[TenantPipeline]:
        """Snapshot lookup of one tenant (safe from any thread)."""
        with self._lock:
            return self.tenants.get(name)

    def tenant_items(self) -> List[Tuple[str, TenantPipeline]]:
        """A point-in-time copy of the tenant map (safe from any thread)."""
        with self._lock:
            return list(self.tenants.items())

    def recent_errors(self) -> List[str]:
        """A copy of the recent ingest-error tail (safe from any thread)."""
        with self._lock:
            return list(self.errors)

    # -- ingest ----------------------------------------------------------

    def feed(
        self,
        tenant: str,
        messages: Iterable[ControlMessage],
        *,
        block: bool = True,
    ) -> int:
        """Enqueue a batch for ``tenant``; returns messages accepted.

        ``block=True`` applies backpressure (the call waits for queue
        room — the lossless mode for file replay and benchmarks);
        ``block=False`` drops the whole batch when the queue is full,
        counted under ``service_dropped_total{reason="backpressure"}``
        (the lossy mode for live feeds that must not stall the producer).
        """
        with self._lock:
            known = tenant in self.tenants
        if not known:
            raise KeyError(f"unknown tenant {tenant!r}")
        batch = list(messages)
        if not batch:
            return 0
        item = (tenant, batch)
        # The put happens outside the lock: with backpressure it blocks
        # until the drain thread makes room, and the drain thread takes
        # the same lock to account its progress.
        if block:
            self._queue.put(item)
        else:
            try:
                self._queue.put_nowait(item)
            except queue.Full:
                self.metrics.counter(
                    "service_dropped_total", tenant=tenant, reason="backpressure"
                ).inc(len(batch))
                return 0
        with self._lock:
            self._depth_msgs += len(batch)
            depth = self._depth_msgs
        self._m_depth.set(float(depth))
        return len(batch)

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        """Start the drain thread (idempotent)."""
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._drain_loop, name="repro-service-drain", daemon=True
        )
        self._thread.start()

    def stop(self, drain: bool = True) -> None:
        """Stop the drain thread; with ``drain``, finish queued work first."""
        if self._thread is None:
            return
        if drain:
            self._queue.join()
        self._queue.put(_STOP)
        self._thread.join(timeout=30.0)
        self._thread = None

    def drain(self) -> None:
        """Block until every queued batch has been processed."""
        self._queue.join()

    def _drain_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                self._queue.task_done()
                return
            name, batch = item  # type: ignore[misc]
            try:
                with self._lock:
                    pipeline = self.tenants.get(name)
                if pipeline is None:  # pragma: no cover - feed() checks first
                    raise KeyError(f"unknown tenant {name!r}")
                # Ingest is the heavy path (modeling, checkpoint I/O) and
                # must run outside the service lock.
                pipeline.ingest(batch)
            except Exception as exc:  # pragma: no cover - defensive
                self.metrics.counter(
                    "service_ingest_errors_total", tenant=name
                ).inc()
                with self._lock:
                    self.errors.append(f"{name}: {exc!r}")
                    del self.errors[:-16]
            finally:
                with self._lock:
                    self._depth_msgs -= len(batch)
                    depth = self._depth_msgs
                self._m_depth.set(float(depth))
                self._queue.task_done()

    def __enter__(self) -> "StreamService":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()


class FileTailSource:
    """Stream a JSONL capture file into the service, batch by batch.

    Reads the :mod:`repro.openflow.serialize` line format. With
    ``follow=True`` the source keeps polling for appended lines until
    :meth:`stop` — a live capture tail; otherwise it stops at EOF.
    Undecodable lines are counted (``service_dropped_total`` with
    ``reason="decode"``) and skipped rather than wedging the tail.
    """

    def __init__(
        self,
        service: StreamService,
        tenant: str,
        path: str,
        *,
        batch_size: int = 256,
        follow: bool = False,
        poll_interval: float = 0.2,
    ) -> None:
        self.service = service
        self.tenant = tenant
        self.path = path
        self.batch_size = max(1, batch_size)
        self.follow = follow
        self.poll_interval = poll_interval
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self.run, name=f"repro-service-tail-{self.tenant}", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()

    def join(self, timeout: Optional[float] = None) -> None:
        if self._thread is not None:
            self._thread.join(timeout)

    def run(self) -> None:
        """Tail the file until EOF (or :meth:`stop` when following)."""
        batch: List[ControlMessage] = []
        with open(self.path, "r", encoding="utf-8") as fh:
            while not self._stop.is_set():
                line = fh.readline()
                if not line:
                    if batch:
                        self.service.feed(self.tenant, batch)
                        batch = []
                    if not self.follow:
                        return
                    time.sleep(self.poll_interval)
                    continue
                line = line.strip()
                if not line:
                    continue
                try:
                    batch.append(message_from_json(json.loads(line)))
                except (ValueError, KeyError, TypeError):
                    self.service.metrics.counter(
                        "service_dropped_total",
                        tenant=self.tenant,
                        reason="decode",
                    ).inc()
                    continue
                if len(batch) >= self.batch_size:
                    self.service.feed(self.tenant, batch)
                    batch = []
        if batch:
            self.service.feed(self.tenant, batch)


def replay_messages(
    service: StreamService,
    tenant: str,
    messages: Sequence[ControlMessage],
    batch_size: int = 1024,
) -> int:
    """Feed an in-memory capture through the queue in order; returns count.

    The in-process equivalent of a file tail — what the benchmark and the
    simulator integration use.
    """
    total = 0
    for start in range(0, len(messages), batch_size):
        total += service.feed(tenant, list(messages[start : start + batch_size]))
    return total
