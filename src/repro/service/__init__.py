"""The streaming FlowDiff service: always-on incremental diagnosis.

The batch pipeline answers "what changed between these two captures?";
this package answers it continuously. A long-running daemon ingests
control messages as they arrive, maintains each tenant's open diagnosis
window *incrementally* through the signatures' associative ``merge()``
path (no per-window remodel), diffs every closed window against the
learned baseline, and serves reports, alerts, flight-recorder traces,
and health over the read-only ops endpoint — with checkpoint/restore so
a restart resumes at the last closed window.

Layers, bottom up:

* :mod:`repro.service.incremental` — one open window folding messages
  into per-slice partial signatures (the incremental data path);
* :mod:`repro.service.tenant` — per-tenant lifecycle: baseline learning,
  window turnover, diagnosis, checkpointing, bounded memory;
* :mod:`repro.service.daemon` — the multi-tenant process: bounded ingest
  queue with backpressure/drop accounting, drain thread, file tail;
* :mod:`repro.service.http` — ``/tenants``, ``/diff``, ``/alerts``,
  ``/traces`` plus extended ``/healthz`` on :mod:`repro.obs.httpd`.
"""

from repro.service.daemon import FileTailSource, StreamService, replay_messages
from repro.service.http import ServiceState, create_server
from repro.service.incremental import (
    STATUS_FALLBACK,
    STATUS_MERGED,
    STATUS_REBUILT,
    IncrementalWindow,
    WindowOutcome,
)
from repro.service.tenant import TenantPipeline

__all__ = [
    "FileTailSource",
    "IncrementalWindow",
    "ServiceState",
    "StreamService",
    "TenantPipeline",
    "WindowOutcome",
    "STATUS_FALLBACK",
    "STATUS_MERGED",
    "STATUS_REBUILT",
    "create_server",
    "replay_messages",
]
