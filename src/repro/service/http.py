"""The service's HTTP surface: diff reports, alerts, traces, health.

:class:`ServiceState` plugs the multi-tenant daemon into the existing
read-only ops endpoint (:mod:`repro.obs.httpd`): the shared ``/metrics``
page exports the tenant-labeled ``service_*`` family through the normal
Prometheus grammar, ``/healthz`` gains a per-tenant summary, and four
service pages ride the endpoint's route table:

* ``/tenants``               — every tenant's phase/progress/health row;
* ``/diff?tenant=X[&n=K]``   — the latest ``K`` window diagnosis reports;
* ``/alerts[?tenant=X]``     — fired alerts, tenant-labeled, stream-time
  ordered (overrides the single-engine page of the base endpoint);
* ``/traces?tenant=X[&corr=N][&flow=S][&limit=K]`` — flight-recorder
  chains reconstructed from the tenant's recent-message ring.

Everything is read-only and served from the tenants' *published
snapshots* (``summary``/``history_rows``/``alerts_snapshot``/
``trace_snapshot`` and the service's ``tenant_items``/``recent_errors``)
— handlers run on the HTTP thread while the drain worker mutates
pipeline state, so they must never touch live modeling attributes.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.obs.httpd import ObsHTTPServer, ObsState
from repro.obs.ledger import RunLedger
from repro.obs.telemetry import NOOP_TELEMETRY, TelemetryPlane
from repro.service.daemon import StreamService
from repro.service.tenant import TenantPipeline

Query = Dict[str, List[str]]


class ServiceState(ObsState):
    """The ops-endpoint state for a running :class:`StreamService`."""

    def __init__(
        self,
        service: StreamService,
        telemetry: TelemetryPlane = NOOP_TELEMETRY,
        ledger: Optional[RunLedger] = None,
    ) -> None:
        super().__init__(
            registry=service.metrics, telemetry=telemetry, ledger=ledger
        )
        self.service = service
        self.routes["/tenants"] = self._route_tenants
        self.routes["/diff"] = self._route_diff
        self.routes["/traces"] = self._route_traces

    # -- overridden base pages ------------------------------------------

    def health(self) -> Dict[str, Any]:
        """Liveness plus per-tenant progress; ``status`` stays ``ok``
        while the daemon serves (per-tenant health is in the rows)."""
        payload = super().health()
        payload["tenants"] = {
            name: tenant.summary()
            for name, tenant in self.service.tenant_items()
        }
        errors = self.service.recent_errors()
        if errors:
            payload["ingest_errors"] = errors
        return payload

    def alerts_json(self) -> List[Dict[str, Any]]:
        """Every tenant's fired alerts, tenant-labeled, ordered by time."""
        out: List[Dict[str, Any]] = []
        for _, tenant in self.service.tenant_items():
            out.extend(tenant.alerts_snapshot())
        out.sort(key=lambda row: row.get("timestamp") or 0.0)
        return out

    # -- service routes --------------------------------------------------

    def _tenant_for(self, query: Query) -> Tuple[Optional[TenantPipeline], Any]:
        """Resolve ``?tenant=``; a single-tenant service needs no query."""
        names = query.get("tenant")
        if names:
            tenant = self.service.get_tenant(names[0])
            if tenant is None:
                return None, (404, {"error": f"unknown tenant {names[0]!r}"})
            return tenant, None
        items = self.service.tenant_items()
        if len(items) == 1:
            return items[0][1], None
        return None, (
            400,
            {"error": "tenant query required", "tenants": sorted(n for n, _ in items)},
        )

    def _route_tenants(self, query: Query) -> Tuple[int, Any]:
        return 200, {
            "tenants": [t.summary() for _, t in self.service.tenant_items()]
        }

    def _route_diff(self, query: Query) -> Tuple[int, Any]:
        tenant, error = self._tenant_for(query)
        if tenant is None:
            return error
        try:
            n = max(1, int(query.get("n", ["1"])[0]))
        except ValueError:
            return 400, {"error": "n must be an integer"}
        return 200, {
            "tenant": tenant.name,
            "phase": tenant.summary().get("phase"),
            "windows": tenant.history_rows(n),
        }

    def _route_traces(self, query: Query) -> Tuple[int, Any]:
        tenant, error = self._tenant_for(query)
        if tenant is None:
            return error
        # Imported lazily: flight reconstruction is a heavyweight
        # analysis path the ingest loop never touches.
        from repro.obs.flightrec import FlightRecorder
        from repro.openflow.log import ControllerLog

        recorder = FlightRecorder.from_log(
            ControllerLog(tenant.trace_snapshot()),
            occurrence_gap=tenant.flowdiff.config.signature.occurrence_gap,
        )
        timelines = recorder.timelines
        corr = query.get("corr")
        if corr:
            try:
                corr_id = int(corr[0])
            except ValueError:
                return 400, {"error": "corr must be an integer"}
            timeline = recorder.timeline(corr_id)
            if timeline is None:
                return 404, {"error": f"no chain with corr id {corr_id}"}
            timelines = [timeline]
        flow = query.get("flow")
        if flow:
            timelines = [
                t for t in timelines if t.flow is not None and flow[0] in str(t.flow)
            ]
        try:
            limit = max(1, int(query.get("limit", ["50"])[0]))
        except ValueError:
            return 400, {"error": "limit must be an integer"}
        return 200, {
            "tenant": tenant.name,
            "chains": len(timelines),
            "timelines": [t.to_dict() for t in timelines[:limit]],
        }


def create_server(
    service: StreamService,
    host: str = "127.0.0.1",
    port: int = 0,
    telemetry: TelemetryPlane = NOOP_TELEMETRY,
    ledger: Optional[RunLedger] = None,
) -> ObsHTTPServer:
    """An ops endpoint bound to ``service`` (start it with ``.start()``)."""
    return ObsHTTPServer(ServiceState(service, telemetry, ledger), host, port)
