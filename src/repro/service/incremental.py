"""Incremental window modeling: the streaming half of the FlowDiff pipeline.

The batch monitor (:class:`repro.core.monitor.SlidingDiagnoser`) remodels
every window from scratch: slice the log, re-extract every flow record,
rebuild every signature. This module maintains one *open* window whose
signatures grow as control messages arrive, so that closing the window is
a cheap associative ``merge()`` over already-built per-slice partials —
the same merge contracts the sharded parallel pipeline
(:mod:`repro.core.parallel`) relies on, exercised continuously instead of
per batch run.

The lifecycle of one :class:`IncrementalWindow`:

1. **Ingest** — each message is bucketed by timestamp: ``PacketIn`` into
   its time slice (the window is pre-split into ``slices`` equal
   intervals via :func:`~repro.analysis.timeseries.split_intervals`),
   ``FlowMod`` into the reply index, ``FlowRemoved`` and port-down
   ``PortStatus`` into window-global lists.
2. **Fold** — once the stream clock passes a slice's upper bound plus one
   ``occurrence_gap`` of grace, the slice's pins are grouped into
   occurrence runs (:func:`~repro.core.events.build_occurrence_runs`) and
   stitched onto runs left open by the previous slice with exactly the
   boundary predicate of the parallel pipeline's ``_stitch``.
3. **Seal** — a stitched run becomes a :class:`~repro.core.events.FlowArrival`
   once no future report can extend it (the stream clock is more than an
   ``occurrence_gap`` past its tail); sealed arrivals are assigned to the
   slice containing their arrival time.
4. **Build** — when a slice can no longer receive arrivals, its partial
   signatures are built (``keep_events``/``keep_times``/``keep_partials``
   forms) against the *expected* application groups — the grouping of the
   previous window — spreading signature construction across the window
   instead of spiking at the boundary.
5. **Close** — the per-slice partials merge into the window model. When
   the window's true groups differ from the expected ones, or anything
   made the window :attr:`dirty` (out-of-order timestamps, unpairable
   ``FlowMod`` traffic), the caller falls back to the batch path; the
   fallback produces byte-identical output, so correctness never depends
   on the optimistic path applying.

Equivalence with the batch path is exact, not approximate: every gap
decision is made once with the shared :func:`splits_occurrence`
predicate, slice partials retain the raw events/times/samples their
merges re-process, and the per-group partial builds mirror
:func:`~repro.core.signatures.application.build_application_signatures`
parameter for parameter. ``tests/test_service.py`` asserts the closed
window models are dict-identical to ``SlidingDiagnoser`` output.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.timeseries import split_intervals
from repro.core.events import (
    FlowArrival,
    FlowRecord,
    HopReport,
    arrival_sort_key,
    build_occurrence_runs,
    join_flow_records,
)
from repro.core.groups import ApplicationGroup, extract_groups
from repro.core.model import BehaviorModel
from repro.core.occurrence import splits_occurrence
from repro.core.signatures.application import (
    ApplicationSignature,
    SignatureConfig,
    build_application_signatures,
    group_records,
)
from repro.core.signatures.connectivity import ConnectivityGraph
from repro.core.signatures.correlation import PartialCorrelation
from repro.core.signatures.delay import DelayDistribution
from repro.core.signatures.flowstats import FlowStats
from repro.core.signatures.infrastructure import (
    InfrastructureSignature,
    build_infrastructure_signature,
)
from repro.core.signatures.interaction import ComponentInteraction
from repro.openflow.log import ControllerLog
from repro.openflow.messages import (
    ControlMessage,
    FlowMod,
    FlowRemoved,
    PacketIn,
    PortStatus,
)

#: Per-slice application partials: (cg, ci, dd, pc) in partial form.
_AppParts = Tuple[
    ConnectivityGraph, ComponentInteraction, DelayDistribution, PartialCorrelation
]

#: How a closed window's model was produced. ``merged`` is the optimistic
#: incremental path; ``rebuilt`` re-runs signature construction from the
#: already-extracted records (grouping changed mid-window); ``fallback``
#: is the full batch remodel (the window went dirty).
STATUS_MERGED = "merged"
STATUS_REBUILT = "rebuilt"
STATUS_FALLBACK = "fallback"


@dataclass(frozen=True)
class WindowOutcome:
    """Everything a closed window hands to the diagnosis stream."""

    model: BehaviorModel
    records: List[FlowRecord]
    status: str
    groups: Tuple[ApplicationGroup, ...]


class IncrementalWindow:
    """One open ``[t_start, t_end)`` window accumulating control traffic.

    Messages must arrive in timestamp order; an out-of-order message (or
    ``FlowMod`` traffic :func:`~repro.core.events.partition_log` would
    decline to shard) marks the window :attr:`dirty` and the owner takes
    the batch fallback for it. The raw message list is kept either way —
    it is what the fallback, re-baselining, and task matching consume.

    Args:
        t_start/t_end: the window bounds.
        config: signature construction knobs (shared with the batch path).
        slices: how many equal sub-intervals to fold the window into; more
            slices spread signature construction more evenly but add merge
            overhead at close.
        expected_groups: the application grouping partials are built
            against — normally the previous window's groups. When the
            closed window's true grouping differs, :meth:`close` rebuilds
            from records instead of merging.
    """

    def __init__(
        self,
        t_start: float,
        t_end: float,
        config: SignatureConfig,
        slices: int,
        expected_groups: Sequence[ApplicationGroup],
    ) -> None:
        if t_end <= t_start:
            raise ValueError(f"empty window [{t_start}, {t_end})")
        self.t_start = t_start
        self.t_end = t_end
        self._cfg = config
        self._gap = config.occurrence_gap
        self._n = max(1, int(slices))
        self._uppers = [hi for _, hi in split_intervals(t_start, t_end, self._n)]
        self.expected_groups: Tuple[ApplicationGroup, ...] = tuple(expected_groups)
        self._member_of: Dict[str, ApplicationGroup] = {}
        for grp in self.expected_groups:
            for host in grp.members:
                self._member_of[host] = grp

        self.raw: List[ControlMessage] = []
        self.dirty: Optional[str] = None
        self._pins: List[List[PacketIn]] = [[] for _ in range(self._n)]
        self._pin_idx = 0
        self._mods: Dict[int, FlowMod] = {}
        self._removed: List[FlowRemoved] = []
        self._port_down: List[Tuple[float, str, int]] = []
        #: Open occurrence runs carried across folded slices, per flow.
        self._open_runs: Dict[object, List[List[HopReport]]] = {}
        self._sealed: List[List[FlowArrival]] = [[] for _ in range(self._n)]
        self._parts: List[Optional[Tuple[Dict[str, _AppParts], InfrastructureSignature]]]
        self._parts = [None] * self._n
        self._folded = 0
        self._built = 0
        self._next_fold_ts = self._uppers[0] + self._gap
        #: Buffer ids of pins folded (mid-window) without a paired mod; a
        #: reply arriving after its pin's hop was frozen dirties the window.
        self._unpaired: Set[int] = set()
        self._last_ts: Optional[float] = None

    # -- ingest ----------------------------------------------------------

    def add(self, msg: ControlMessage) -> None:
        """Ingest one message with timestamp inside ``[t_start, t_end)``."""
        ts = msg.timestamp
        self.raw.append(msg)
        if self._last_ts is not None and ts < self._last_ts:
            self._mark_dirty("out_of_order")
        self._last_ts = ts
        kind = type(msg)
        if kind is PacketIn:
            idx = self._pin_idx
            uppers = self._uppers
            while idx < self._n - 1 and ts >= uppers[idx]:
                idx += 1
            self._pin_idx = idx
            self._pins[idx].append(msg)
        elif kind is FlowMod:
            reply_id = msg.in_reply_to
            if reply_id is None:
                self._mark_dirty("flowmod_without_reply_id")
            elif reply_id in self._mods:
                self._mark_dirty("duplicate_flowmod_reply_id")
            elif reply_id in self._unpaired:
                self._mark_dirty("late_flowmod_reply")
            else:
                self._mods[reply_id] = msg
        elif kind is FlowRemoved:
            self._removed.append(msg)
        elif kind is PortStatus:
            if not msg.live:
                self._port_down.append((msg.timestamp, msg.dpid, msg.port))
        if ts >= self._next_fold_ts and self.dirty is None:
            self._advance(ts)

    def _mark_dirty(self, reason: str) -> None:
        if self.dirty is None:
            self.dirty = reason

    # -- fold / seal / build --------------------------------------------

    def _advance(self, frontier: float) -> None:
        """Fold, seal, and build everything the stream clock has passed."""
        while (
            self._folded < self._n
            and frontier >= self._uppers[self._folded] + self._gap
        ):
            self._fold(self._folded, final=False)
        self._next_fold_ts = (
            self._uppers[self._folded] + self._gap
            if self._folded < self._n
            else float("inf")
        )
        # The seal bound is the earliest report that could still extend an
        # open run: the stream clock bounds *future* messages, but pins
        # already buffered in unfolded slices can precede it.
        seal_bound = frontier
        for k in range(self._folded, self._n):
            pins = self._pins[k]
            if pins:
                if pins[0].timestamp < seal_bound:
                    seal_bound = pins[0].timestamp
                break
        self._seal(seal_bound, final=False)
        self._build_ready(seal_bound)

    def _fold(self, k: int, final: bool) -> None:
        """Group slice ``k``'s pins into runs and stitch them on.

        The stitch predicate is the parallel pipeline's: a slice's head
        run continues the previous open tail when the boundary gap stays
        within ``occurrence_gap``, so every gap decision is made exactly
        once and exactly as the serial extractor would.
        """
        pins = self._pins[k]
        runs = build_occurrence_runs(pins, self._mods, self._gap)
        open_runs = self._open_runs
        for flow, flow_runs in runs.items():
            existing = open_runs.get(flow)
            if existing is None:
                open_runs[flow] = flow_runs
                continue
            head = flow_runs[0]
            tail = existing[-1]
            if not splits_occurrence(
                tail[-1].packet_in_at, head[0].packet_in_at, self._gap
            ):
                tail.extend(head)
                existing.extend(flow_runs[1:])
            else:
                existing.extend(flow_runs)
        if not final:
            mods = self._mods
            for pin in pins:
                if pin.buffer_id not in mods:
                    self._unpaired.add(pin.buffer_id)
        self._pins[k] = []
        self._folded = k + 1

    def _seal(self, frontier: float, final: bool) -> None:
        """Freeze runs no future report can extend into arrivals."""
        open_runs = self._open_runs
        if not open_runs:
            return
        uppers = self._uppers
        last_slice = self._n - 1
        for flow in list(open_runs):
            flow_runs = open_runs[flow]
            keep: Optional[List[List[HopReport]]] = None
            if not final:
                tail = flow_runs[-1]
                if not splits_occurrence(
                    tail[-1].packet_in_at, frontier, self._gap
                ):
                    keep = [tail]
                    flow_runs = flow_runs[:-1]
            for hops in flow_runs:
                arrival = FlowArrival(
                    flow=flow, time=hops[0].packet_in_at, hops=tuple(hops)
                )
                j = bisect_right(uppers, arrival.time)
                self._sealed[j if j <= last_slice else last_slice].append(arrival)
            if keep is None:
                del open_runs[flow]
            else:
                open_runs[flow] = keep

    def _build_ready(self, frontier: float) -> None:
        """Build partials for every slice whose arrival set is complete.

        A slice can still gain arrivals two ways: an unfolded pin starting
        a run inside it, or an open run whose head already lies in it
        sealing later. Both are bounded below by ``bound``.
        """
        bound = frontier
        for flow_runs in self._open_runs.values():
            head_ts = flow_runs[0][0].packet_in_at
            if head_ts < bound:
                bound = head_ts
        while self._built < self._folded and self._uppers[self._built] <= bound:
            self._build_slice(self._built)

    def _build_slice(self, j: int) -> None:
        """Build slice ``j``'s partial signatures against expected groups."""
        arrivals = sorted(self._sealed[j], key=arrival_sort_key)
        self._sealed[j] = arrivals
        member_of = self._member_of
        per_group: Dict[str, List[FlowArrival]] = {
            grp.key: [] for grp in self.expected_groups
        }
        for arrival in arrivals:
            src, dst = arrival.src, arrival.dst
            grp = member_of.get(src) or member_of.get(dst)
            if grp is not None and grp.owns_edge(src, dst):
                per_group[grp.key].append(arrival)
        cfg = self._cfg
        t0, t1 = self.t_start, self.t_end
        app: Dict[str, _AppParts] = {}
        for key, grp_arrivals in per_group.items():
            app[key] = (
                ConnectivityGraph.build(grp_arrivals),
                ComponentInteraction.build(grp_arrivals),
                DelayDistribution.build(
                    grp_arrivals,
                    window=cfg.dd_window,
                    bin_width=cfg.dd_bin_width,
                    keep_events=True,
                ),
                # PC series span the whole window (the merge re-buckets
                # against the same bounds), not the slice.
                PartialCorrelation.build(
                    grp_arrivals, t0, t1, epoch=cfg.epoch, keep_times=True
                ),
            )
        infra = build_infrastructure_signature(arrivals, keep_partials=True)
        self._parts[j] = (app, infra)
        self._built = j + 1

    # -- close -----------------------------------------------------------

    def close(self) -> Optional[WindowOutcome]:
        """Finish the window; ``None`` when dirty (caller takes fallback)."""
        if self.dirty is not None:
            return None
        while self._folded < self._n:
            self._fold(self._folded, final=True)
        self._seal(self.t_end, final=True)
        while self._built < self._n:
            self._build_slice(self._built)

        # Per-slice lists are each sorted and partition the window by
        # time, so their concatenation is the full sorted arrival stream.
        all_arrivals: List[FlowArrival] = []
        for slice_arrivals in self._sealed:
            all_arrivals.extend(slice_arrivals)
        records = join_flow_records(all_arrivals, self._removed)
        true_groups = tuple(
            extract_groups(all_arrivals, self._cfg.special_nodes)
        )
        t0, t1 = self.t_start, self.t_end
        cfg = self._cfg

        if true_groups == self.expected_groups:
            by_group = group_records(records, true_groups)
            app_sigs: Dict[str, ApplicationSignature] = {}
            for grp in true_groups:
                key = grp.key
                parts = [self._parts[j][0][key] for j in range(self._n)]  # type: ignore[index]
                app_sigs[key] = ApplicationSignature(
                    group=grp,
                    cg=ConnectivityGraph.merge([p[0] for p in parts]),
                    # FS joins arrivals with expiry counters window-wide,
                    # so it is built once from the joined records instead
                    # of merged from per-slice partials.
                    fs=FlowStats.build(by_group[key], t0, t1, cfg.epoch),
                    ci=ComponentInteraction.merge([p[1] for p in parts]),
                    dd=DelayDistribution.merge(
                        [p[2] for p in parts],
                        window=cfg.dd_window,
                        bin_width=cfg.dd_bin_width,
                    ),
                    pc=PartialCorrelation.merge(
                        [p[3] for p in parts], t0, t1, epoch=cfg.epoch
                    ),
                )
            merged_infra = InfrastructureSignature.merge(
                [self._parts[j][1] for j in range(self._n)]  # type: ignore[index]
            )
            infra = InfrastructureSignature(
                pt=merged_infra.pt,
                isl=merged_infra.isl,
                crt=merged_infra.crt,
                port_down_events=tuple(self._port_down),
            )
            status = STATUS_MERGED
        else:
            app_sigs = build_application_signatures(
                None, cfg, window=(t0, t1), records=records
            )
            infra = build_infrastructure_signature(
                [r.arrival for r in records],
                port_down_events=self._port_down,
            )
            status = STATUS_REBUILT

        model = BehaviorModel(
            app_signatures=app_sigs,
            infrastructure=infra,
            window=(t0, t1),
        )
        return WindowOutcome(
            model=model, records=records, status=status, groups=true_groups
        )

    def as_log(self) -> ControllerLog:
        """The window's raw messages as a (re-sorted) controller log."""
        return ControllerLog(self.raw)
