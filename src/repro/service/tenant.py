"""One tenant of the streaming service: ingest → windows → diagnoses.

A :class:`TenantPipeline` owns everything one monitored environment
needs: the baseline-learning phase, the open
:class:`~repro.service.incremental.IncrementalWindow`, the shared
:class:`~repro.core.monitor.DiagnosisStream` (diffing, history, health
metrics, alerting), a bounded flight-recorder ring of recent raw
messages, and checkpoint/restore through :mod:`repro.core.persist` so a
restarted daemon resumes at the last closed window instead of cold
remodeling.

Memory is bounded by construction: raw messages and partial signatures
live only for the currently open window, the report history is trimmed
to ``history_limit`` entries, and the trace ring is a fixed-size deque.

The heavy pipeline is single-threaded by design — the daemon
(:mod:`repro.service.daemon`) serializes all ingest through one drain
thread, so modeling state needs no locks. What *is* shared with the
HTTP thread goes through a small set of published mirrors guarded by
``_lock``: the trace ring, prebuilt diff-report rows, tenant-labeled
alert rows, and the :meth:`summary` snapshot dict. The worker rebuilds
those mirrors at phase changes and window closes (all computation
outside the lock, only the swap inside), and HTTP handlers read them
through the ``*_snapshot``/``history_rows``/``summary`` accessors —
never the live modeling attributes.
"""

from __future__ import annotations

import os
import threading
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.core.events import extract_flow_records
from repro.core.flowdiff import FlowDiff, FlowDiffConfig
from repro.core.groups import ApplicationGroup
from repro.core.monitor import DiagnosisStream, WindowReport
from repro.core.persist import (
    ModelCache,
    ModelLoadError,
    load_checkpoint,
    save_checkpoint,
)
from repro.core.tasks.library import TaskLibrary
from repro.obs.alerts import AlertEngine
from repro.obs.metrics import NOOP_REGISTRY, MetricsRegistry
from repro.obs.tracing import wall_now
from repro.openflow.log import ControllerLog
from repro.openflow.messages import ControlMessage
from repro.service.incremental import STATUS_FALLBACK, IncrementalWindow

PHASE_BASELINE = "baseline"
PHASE_STREAMING = "streaming"


class TenantPipeline:
    """Always-on incremental diagnosis for one monitored environment.

    Args:
        name: the tenant label (rides on every ``service_*`` metric).
        config: FlowDiff tunables; defaults are the paper's settings.
        window: seconds of stream per diagnosis window.
        baseline_span: seconds of stream learned as the healthy baseline
            before windowed diagnosis starts; defaults to ``window``.
        slices: sub-intervals per window for incremental folding.
        task_library: learned operator-task signatures used to silence
            planned changes (forces per-window log materialization).
        rebaseline_after: see :class:`~repro.core.monitor.DiagnosisStream`.
        metrics: shared service registry; all ``service_*`` instruments
            carry a ``tenant`` label.
        alert_engine: per-tenant alert engine; every closed window streams
            through it.
        checkpoint_dir: when set, the baseline model and per-window cursor
            persist here (via :mod:`repro.core.persist`); a new pipeline
            pointed at the same directory resumes instead of relearning.
        history_limit: report-history cap; older windows are dropped (the
            checkpointed cursor, not history, is the durable state).
        trace_capacity: raw messages retained for flight-recorder traces.
        resume: attempt checkpoint restore at construction.
    """

    def __init__(
        self,
        name: str,
        config: Optional[FlowDiffConfig] = None,
        *,
        window: float = 30.0,
        baseline_span: Optional[float] = None,
        slices: int = 4,
        task_library: Optional[TaskLibrary] = None,
        rebaseline_after: int = 0,
        metrics: MetricsRegistry = NOOP_REGISTRY,
        alert_engine: Optional[AlertEngine] = None,
        checkpoint_dir: Optional[str] = None,
        history_limit: int = 256,
        trace_capacity: int = 4096,
        resume: bool = True,
    ) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.name = name
        self.flowdiff = FlowDiff(config, metrics=metrics)
        self.window = float(window)
        self.baseline_span = float(
            baseline_span if baseline_span is not None else window
        )
        self.slices = max(1, int(slices))
        self.metrics = metrics
        self.history_limit = max(1, int(history_limit))
        self.stream = DiagnosisStream(
            self.flowdiff,
            task_library=task_library,
            rebaseline_after=rebaseline_after,
            metrics=metrics,
            alert_engine=alert_engine,
        )
        #: Guards the published mirrors below (and the trace ring) — the
        #: only tenant state the HTTP thread may touch.
        self._lock = threading.Lock()
        self.trace_ring: Deque[ControlMessage] = deque(maxlen=trace_capacity)
        self._published: Dict[str, object] = {}
        self._history_rows: List[Dict[str, object]] = []
        self._alert_rows: List[Dict[str, object]] = []
        self._alerts_seen = 0

        self._m_ingested = metrics.counter(
            "service_ingest_messages_total", tenant=name
        )
        self._m_late = metrics.counter(
            "service_dropped_total", tenant=name, reason="late"
        )
        self._m_resumed = metrics.counter(
            "service_resume_skipped_total", tenant=name
        )
        self._m_windows = metrics.counter("service_windows_total", tenant=name)
        self._m_report = metrics.histogram("service_report_seconds")
        self._m_checkpoints = metrics.counter(
            "service_checkpoints_total", tenant=name
        )
        self._m_checkpoint_age = metrics.gauge(
            "service_checkpoint_age_seconds", tenant=name
        )

        self.phase = PHASE_BASELINE
        self.status_counts: Dict[str, int] = {}
        self.windows_total = 0
        self.resumed = False
        self._buffer: List[ControlMessage] = []
        self._t_first: Optional[float] = None
        self._baseline_end: Optional[float] = None
        self._cursor: Optional[float] = None
        self._resume_cursor: Optional[float] = None
        self._win: Optional[IncrementalWindow] = None
        self._expected_groups: Tuple[ApplicationGroup, ...] = ()
        self._baseline_digest: Optional[str] = None
        self._last_checkpoint_ts: Optional[float] = None

        self.checkpoint_path: Optional[str] = None
        self._cache: Optional[ModelCache] = None
        if checkpoint_dir:
            self.checkpoint_path = os.path.join(
                checkpoint_dir, f"checkpoint-{name}.json"
            )
            self._cache = ModelCache(checkpoint_dir)
            if resume:
                self._restore()
        self._publish()

    # -- ingest ----------------------------------------------------------

    def ingest(self, messages: List[ControlMessage]) -> List[WindowReport]:
        """Consume a batch of time-ordered messages; return closed windows.

        Messages older than an already-closed window are dropped (with
        ``service_dropped_total{reason="late"}`` accounting) — the batch
        path would have sorted them in, but a closed window is immutable
        by design; replays during checkpoint resume are skipped silently
        under ``service_resume_skipped_total``.
        """
        self._m_ingested.inc(len(messages))
        reports: List[WindowReport] = []
        # One bulk append per batch: the ring is read by the HTTP thread
        # (``trace_snapshot``), so mutation happens under the lock — and
        # amortized per batch, not per message.
        with self._lock:
            self.trace_ring.extend(messages)
        resume_cursor = self._resume_cursor
        for msg in messages:
            ts = msg.timestamp
            if resume_cursor is not None:
                if ts < resume_cursor:
                    self._m_resumed.inc()
                    continue
                resume_cursor = None
                self._resume_cursor = None
            if self.phase == PHASE_BASELINE:
                if self._t_first is None:
                    self._t_first = ts
                    self._baseline_end = ts + self.baseline_span
                if ts < self._baseline_end:  # type: ignore[operator]
                    self._buffer.append(msg)
                    continue
                self._learn_baseline()
            win = self._win
            if ts < win.t_start:  # type: ignore[union-attr]
                self._m_late.inc()
                continue
            while ts >= win.t_end:  # type: ignore[union-attr]
                reports.append(self._close_window())
                win = self._win
            win.add(msg)  # type: ignore[union-attr]
        return reports

    # -- phases ----------------------------------------------------------

    def _learn_baseline(self) -> None:
        """Model the buffered span as the healthy reference and move on."""
        assert self._t_first is not None and self._baseline_end is not None
        baseline_log = ControllerLog(self._buffer)
        baseline = self.flowdiff.model(
            baseline_log, window=(self._t_first, self._baseline_end)
        )
        self.stream.set_baseline_model(baseline)
        self._expected_groups = tuple(baseline.groups())
        self._buffer = []
        self.phase = PHASE_STREAMING
        self._cursor = self._baseline_end
        if self._cache is not None:
            self._baseline_digest = self._cache.store_object(baseline)
        self._open_window()
        self._publish()

    def _open_window(self) -> None:
        assert self._cursor is not None
        self._win = IncrementalWindow(
            self._cursor,
            self._cursor + self.window,
            self.flowdiff.config.signature,
            self.slices,
            self._expected_groups,
        )

    def _close_window(self) -> WindowReport:
        """Close the open window, diagnose it, checkpoint, open the next."""
        win = self._win
        assert win is not None
        started = wall_now()
        t0, t1 = win.t_start, win.t_end
        need_log = (
            self.stream.task_library is not None
            or self.stream.rebaseline_after > 0
        )
        outcome = win.close()
        if outcome is None:
            # Dirty window: the batch path, bit-identical to the monitor.
            sub = win.as_log()
            records = extract_flow_records(
                sub, self.flowdiff.config.signature.occurrence_gap
            )
            model = self.flowdiff.model(
                sub, window=(t0, t1), assess=False, records=records
            )
            status = STATUS_FALLBACK
            expected = tuple(model.groups())
            window_log: Optional[ControllerLog] = sub
        else:
            model = outcome.model
            records = outcome.records
            status = outcome.status
            expected = outcome.groups
            window_log = win.as_log() if need_log else None
        self.metrics.counter(
            "service_window_merge_total", tenant=self.name, status=status
        ).inc()
        self.status_counts[status] = self.status_counts.get(status, 0) + 1
        entry = self.stream.observe(
            t0, t1, model, window_log=window_log, records=records, started=started
        )
        history = self.stream.history
        if len(history) > self.history_limit:
            del history[: len(history) - self.history_limit]
        self.windows_total += 1
        self._m_windows.inc()
        self._expected_groups = expected
        self._cursor = t1
        self._open_window()
        anchor = (
            self._last_checkpoint_ts
            if self._last_checkpoint_ts is not None
            else self._baseline_end
        )
        if anchor is not None:
            # Stream-time seconds of diagnosis an unplanned restart would
            # have to replay — the staleness of the durable state.
            self._m_checkpoint_age.set(t1 - anchor)
        self._checkpoint(t1)
        self._publish_window(entry)
        self._publish_alerts()
        self._publish()
        self._m_report.observe(wall_now() - started)
        return entry

    # -- published mirrors (worker writes, HTTP reads) -------------------

    def _publish_window(self, entry: WindowReport) -> None:
        """Append one prebuilt ``/diff`` row; the expensive
        ``report.to_dict()`` runs before the lock is taken."""
        row: Dict[str, object] = {
            "t_start": entry.t_start,
            "t_end": entry.t_end,
            "healthy": entry.healthy,
            "report": entry.report.to_dict(),
        }
        with self._lock:
            self._history_rows.append(row)
            if len(self._history_rows) > self.history_limit:
                del self._history_rows[: len(self._history_rows) - self.history_limit]

    def _publish_alerts(self) -> None:
        """Mirror alerts fired since the last close, tenant-labeled."""
        engine = self.stream.alert_engine
        if engine is None:
            return
        alerts = engine.alerts
        if len(alerts) <= self._alerts_seen:
            return
        rows: List[Dict[str, object]] = []
        for alert in alerts[self._alerts_seen :]:
            row = alert.to_dict()
            row["tenant"] = self.name
            rows.append(row)
        self._alerts_seen = len(alerts)
        with self._lock:
            self._alert_rows.extend(rows)

    def _publish(self) -> None:
        """Rebuild the :meth:`summary` snapshot from worker-owned state."""
        worst = None
        alerts = 0
        engine = self.stream.alert_engine
        if engine is not None:
            alerts = len(engine.alerts)
            severity = engine.worst_severity()
            worst = str(severity) if severity is not None else None
        last_window = None
        history = self.stream.history
        if history:
            tail = history[-1]
            last_window = [tail.t_start, tail.t_end]
        payload: Dict[str, object] = {
            "tenant": self.name,
            "phase": self.phase,
            "resumed": self.resumed,
            "windows": self.windows_total,
            "statuses": dict(self.status_counts),
            "cursor": self._cursor,
            "last_window": last_window,
            "healthy_streak": self.stream.healthy_streak(),
            "alerts": alerts,
            "worst_severity": worst,
        }
        with self._lock:
            self._published = payload

    # -- checkpoint / restore -------------------------------------------

    def _checkpoint(self, at_ts: float) -> None:
        if self.checkpoint_path is None:
            return
        state = {
            "tenant": self.name,
            "cursor": self._cursor,
            "window": self.window,
            "baseline_span": self.baseline_span,
            "slices": self.slices,
            "t_first": self._t_first,
            "baseline_digest": self._baseline_digest,
            "expected_groups": [
                [sorted(g.members), sorted(g.services)]
                for g in self._expected_groups
            ],
            "windows_total": self.windows_total,
            "status_counts": dict(self.status_counts),
            "checkpointed_at": at_ts,
        }
        save_checkpoint(self.checkpoint_path, state)
        self._last_checkpoint_ts = at_ts
        self._m_checkpoints.inc()

    def _restore(self) -> None:
        """Resume from the tenant's checkpoint when one is loadable.

        Any failure (no file, version skew, evicted baseline model) falls
        back to a cold start — restore is an optimization, never a
        correctness dependency.
        """
        assert self.checkpoint_path is not None and self._cache is not None
        if not os.path.exists(self.checkpoint_path):
            return
        try:
            state = load_checkpoint(self.checkpoint_path)
        except (ModelLoadError, OSError):
            return
        digest = state.get("baseline_digest")
        baseline = self._cache.load_object(digest) if digest else None
        if baseline is None:
            return
        self.stream.set_baseline_model(baseline)
        self.phase = PHASE_STREAMING
        self._t_first = state.get("t_first")
        self._baseline_end = (
            self._t_first + self.baseline_span
            if self._t_first is not None
            else None
        )
        self._baseline_digest = digest
        self._cursor = float(state["cursor"])
        self._resume_cursor = self._cursor
        self._expected_groups = tuple(
            ApplicationGroup(members=frozenset(members), services=frozenset(services))
            for members, services in state.get("expected_groups", [])
        )
        self.windows_total = int(state.get("windows_total", 0))
        self.status_counts = dict(state.get("status_counts", {}))
        self._last_checkpoint_ts = state.get("checkpointed_at")
        self.resumed = True
        self._open_window()

    # -- introspection ---------------------------------------------------

    @property
    def history(self) -> List[WindowReport]:
        return self.stream.history

    @property
    def alert_engine(self) -> Optional[AlertEngine]:
        return self.stream.alert_engine

    def summary(self) -> Dict[str, object]:
        """One row of ``/tenants``: phase, progress, and health.

        Served from the published snapshot — safe from any thread; the
        worker refreshes it at every phase change and window close.
        """
        with self._lock:
            return dict(self._published)

    def history_rows(self, n: int) -> List[Dict[str, object]]:
        """The last ``n`` prebuilt ``/diff`` rows (safe from any thread)."""
        with self._lock:
            rows = self._history_rows[-n:] if n > 0 else []
            return [dict(row) for row in rows]

    def alerts_snapshot(self) -> List[Dict[str, object]]:
        """Every mirrored alert row, tenant-labeled (safe from any thread)."""
        with self._lock:
            return [dict(row) for row in self._alert_rows]

    def trace_snapshot(self) -> List[ControlMessage]:
        """A point-in-time copy of the trace ring (safe from any thread)."""
        with self._lock:
            return list(self.trace_ring)
