"""Operator tasks: the planned changes FlowDiff must recognize, not flag.

Task signatures exist because valid operational work (VM migration, data
backup, storage mounts) changes application and infrastructure signatures
in ways that are *not* problems (Section III-D). Each task here can both

* **run** against a simulated network — injecting its characteristic flow
  sequence and applying its side effects (a migration re-homes the VM, a
  stop powers it off), and
* **emit** its canonical flow sequence for training task automata.
"""

from repro.ops.schedule import MaintenanceWindow, Reconciliation, ScheduledTask
from repro.ops.tasks import (
    ACLUpdateTask,
    MountNFSTask,
    OperatorTask,
    UnmountNFSTask,
    VLANUpdateTask,
    VMMigrationTask,
    VMStartupTask,
    VMStopTask,
)

__all__ = [
    "MaintenanceWindow",
    "Reconciliation",
    "ScheduledTask",
    "ACLUpdateTask",
    "MountNFSTask",
    "OperatorTask",
    "UnmountNFSTask",
    "VLANUpdateTask",
    "VMMigrationTask",
    "VMStartupTask",
    "VMStopTask",
]
