"""Maintenance windows: schedule operator tasks and reconcile detections.

Operationally, task signatures close a loop the paper only sketches: the
operator *schedules* work (migrations, storage changes), FlowDiff
*detects* task occurrences from control traffic, and reconciliation
answers three questions --

* did every scheduled task actually happen (missed = change ticket not
  executed, or executed invisibly)?
* did anything task-shaped happen that was NOT scheduled (unexpected =
  unauthorized operator activity, the control-plane analog of
  unauthorized access)?
* did the work happen roughly on time?
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.tasks.detector import TaskEvent
from repro.netsim.network import Network
from repro.ops.tasks import OperatorTask


@dataclass(frozen=True)
class ScheduledTask:
    """One planned item of a maintenance window.

    Attributes:
        task: the operator task to perform.
        at: planned start time (simulation seconds).
        tolerance: how far from ``at`` a detection may land and still be
            reconciled with this item.
    """

    task: OperatorTask
    at: float
    tolerance: float = 10.0


@dataclass(frozen=True)
class Reconciliation:
    """The outcome of comparing detections against the schedule.

    Attributes:
        matched: (scheduled item, detected event) pairs.
        missed: scheduled items with no matching detection.
        unexpected: detected task events no schedule item explains.
    """

    matched: Tuple[Tuple[ScheduledTask, TaskEvent], ...]
    missed: Tuple[ScheduledTask, ...]
    unexpected: Tuple[TaskEvent, ...]

    @property
    def clean(self) -> bool:
        """True when everything scheduled happened and nothing else did."""
        return not self.missed and not self.unexpected

    def render(self) -> str:
        """Human-readable reconciliation summary."""
        lines = [
            f"maintenance reconciliation: {len(self.matched)} matched, "
            f"{len(self.missed)} missed, {len(self.unexpected)} unexpected"
        ]
        for item, event in self.matched:
            lines.append(
                f"  ok      {item.task.name} planned@{item.at:.1f}s "
                f"detected@{event.t_start:.1f}s"
            )
        for item in self.missed:
            lines.append(f"  MISSED  {item.task.name} planned@{item.at:.1f}s")
        for event in self.unexpected:
            lines.append(
                f"  EXTRA   {event.name} detected@{event.t_start:.1f}s "
                f"hosts={sorted(event.hosts)}"
            )
        return "\n".join(lines)


class MaintenanceWindow:
    """A batch of scheduled operator tasks plus the reconciliation logic."""

    def __init__(self, items: Optional[Sequence[ScheduledTask]] = None) -> None:
        self.items: List[ScheduledTask] = list(items or [])

    def add(self, task: OperatorTask, at: float, tolerance: float = 10.0) -> None:
        """Schedule one task."""
        self.items.append(ScheduledTask(task=task, at=at, tolerance=tolerance))

    def run(self, network: Network, seed: int = 0) -> None:
        """Execute every scheduled task on the network at its planned time."""
        for i, item in enumerate(self.items):
            item.task.run(network, at=item.at, rng=random.Random(seed + i))

    def reconcile(self, detected: Sequence[TaskEvent]) -> Reconciliation:
        """Match detections against the schedule.

        Greedy matching: each scheduled item takes the earliest unclaimed
        detection of its task type within tolerance; the hosts of the
        detection must include the task's involved hosts when both are
        known (so a detection of *someone else's* migration cannot satisfy
        this item).
        """
        remaining = list(detected)
        matched: List[Tuple[ScheduledTask, TaskEvent]] = []
        missed: List[ScheduledTask] = []
        for item in sorted(self.items, key=lambda i: i.at):
            expected_hosts = item.task.involved_hosts()
            found = None
            for event in sorted(remaining, key=lambda e: e.t_start):
                if event.name != item.task.name:
                    continue
                if abs(event.t_start - item.at) > item.tolerance:
                    continue
                if expected_hosts and event.hosts and not (
                    expected_hosts & event.hosts
                ):
                    continue
                found = event
                break
            if found is None:
                missed.append(item)
            else:
                remaining.remove(found)
                matched.append((item, found))
        return Reconciliation(
            matched=tuple(matched),
            missed=tuple(missed),
            unexpected=tuple(remaining),
        )
