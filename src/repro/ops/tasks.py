"""Concrete operator tasks and their characteristic flow sequences.

The VM-migration sequence follows the paper's Figure 4: the source host
updates the VM image on the NFS server (port 2049), negotiates the
migration with the destination host on port 8002, streams the VM state,
and the destination finally synchronizes with NFS. The other tasks
(startup, stop, mount/unmount network storage) are the five task types the
paper validates on its lab testbed (Section V-B2); each "involve[s] flows
to/from a single host and their task signatures have unique sequences of
connections".

Every task supports two uses:

* :meth:`OperatorTask.flow_sequence` -- the timed flows of one run
  (randomized the same way real runs vary), for automaton training and for
  trace-level experiments.
* :meth:`OperatorTask.run` -- schedule the flows on a live network and
  apply the task's side effect (topology change, host power state).
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import List, Optional, Sequence, Set, Tuple

from repro.netsim.network import FlowRequest, Network
from repro.openflow.match import FlowKey

TimedFlow = Tuple[float, FlowKey]

NFS_PORT = 2049
MIGRATION_PORT = 8002
PORTMAP_PORT = 111
MOUNTD_PORT = 20048


class OperatorTask(ABC):
    """Base class for operator tasks.

    Attributes:
        name: the task-type label used by the task library and time series.
    """

    name: str = "task"

    @abstractmethod
    def flow_sequence(self, rng: random.Random) -> List[TimedFlow]:
        """One run's timed flows, with times relative to the task start."""

    def involved_hosts(self) -> Set[str]:
        """Hosts whose signature changes this task can explain."""
        return set()

    def side_effect(self, network: Network) -> None:
        """Apply the task's lasting effect on the network (default: none)."""

    def run(
        self,
        network: Network,
        at: float,
        rng: Optional[random.Random] = None,
        flow_size: int = 4000,
        flow_duration: float = 0.01,
    ) -> float:
        """Schedule the task's flows on ``network`` starting at ``at``.

        Returns:
            The (relative-time) end of the flow sequence, after which the
            side effect fires.
        """
        rng = rng or random.Random(0)
        sequence = self.flow_sequence(rng)
        for dt, key in sequence:
            network.sim.schedule_at(
                at + dt,
                lambda k=key: network.send_flow(
                    FlowRequest(key=k, size_bytes=flow_size, duration=flow_duration)
                ),
            )
        end = max((dt for dt, _ in sequence), default=0.0)
        network.sim.schedule_at(at + end + 0.05, lambda: self.side_effect(network))
        return end

    @staticmethod
    def _eph(rng: random.Random) -> int:
        return rng.randint(32768, 60999)

    @staticmethod
    def _gaps(rng: random.Random, n: int, mean: float = 0.05) -> List[float]:
        """Cumulative start offsets for ``n`` flows with exponential gaps."""
        t = 0.0
        out = []
        for _ in range(n):
            t += rng.expovariate(1.0 / mean)
            out.append(t)
        return out


class VMMigrationTask(OperatorTask):
    """Migrate a VM from host A to host B (Figure 4).

    Args:
        vm: the VM node that changes attachment.
        host_a: source physical host.
        host_b: destination physical host.
        nfs: the network-file-system server storing VM images.
        dst_switch: where the VM attaches after migration (defaults to
            keeping its current attachment — useful for trace-only runs).
    """

    name = "vm_migration"

    def __init__(
        self,
        vm: str,
        host_a: str,
        host_b: str,
        nfs: str,
        dst_switch: Optional[str] = None,
    ) -> None:
        self.vm = vm
        self.host_a = host_a
        self.host_b = host_b
        self.nfs = nfs
        self.dst_switch = dst_switch

    def involved_hosts(self) -> Set[str]:
        return {self.vm, self.host_a, self.host_b, self.nfs}

    def flow_sequence(self, rng: random.Random) -> List[TimedFlow]:
        a, b, nfs = self.host_a, self.host_b, self.nfs
        steps = [
            FlowKey(a, nfs, self._eph(rng), NFS_PORT),  # update image (a)
            FlowKey(nfs, a, NFS_PORT, self._eph(rng)),  # NFS reply    (b)
            FlowKey(a, b, MIGRATION_PORT, MIGRATION_PORT),  # request  (c)
            FlowKey(b, a, MIGRATION_PORT, MIGRATION_PORT),  # accept   (d)
            FlowKey(b, nfs, self._eph(rng), NFS_PORT),  # sync state  (e)
            FlowKey(nfs, b, NFS_PORT, self._eph(rng)),  # NFS reply   (f)
        ]
        times = self._gaps(rng, len(steps))
        out: List[TimedFlow] = []
        for t, key in zip(times, steps):
            out.append((t, key))
            # Figure 4(b): NFS exchanges at the source often repeat as the
            # image pages are flushed.
            if key.dst_port == NFS_PORT and rng.random() < 0.35:
                out.append((t + rng.uniform(0.005, 0.03), key))
        out.sort(key=lambda tf: tf[0])
        return out

    def side_effect(self, network: Network) -> None:
        if self.dst_switch is not None:
            network.migrate_host(self.vm, self.dst_switch)


class VMStartupTask(OperatorTask):
    """Boot a VM inside the data center (DHCP/DNS/NTP/storage sequence)."""

    name = "vm_startup"

    def __init__(
        self,
        vm: str,
        dhcp: str,
        dns: str,
        ntp: str,
        nfs: Optional[str] = None,
    ) -> None:
        self.vm = vm
        self.dhcp = dhcp
        self.dns = dns
        self.ntp = ntp
        self.nfs = nfs

    def involved_hosts(self) -> Set[str]:
        hosts = {self.vm, self.dhcp, self.dns, self.ntp}
        if self.nfs:
            hosts.add(self.nfs)
        return hosts

    def flow_sequence(self, rng: random.Random) -> List[TimedFlow]:
        steps = [
            FlowKey(self.vm, self.dhcp, 68, 67, proto="udp"),
            FlowKey(self.vm, self.dns, self._eph(rng), 53, proto="udp"),
            FlowKey(self.vm, self.ntp, self._eph(rng), 123, proto="udp"),
        ]
        if rng.random() < 0.8:
            steps.append(FlowKey(self.vm, self.dns, self._eph(rng), 53, proto="udp"))
        if self.nfs is not None:
            steps.append(FlowKey(self.vm, self.nfs, self._eph(rng), NFS_PORT))
        times = self._gaps(rng, len(steps))
        return list(zip(times, steps))

    def side_effect(self, network: Network) -> None:
        network.boot_host(self.vm)


class VMStopTask(OperatorTask):
    """Shut a VM down, synchronizing its state to NFS first."""

    name = "vm_stop"

    def __init__(self, vm: str, nfs: str) -> None:
        self.vm = vm
        self.nfs = nfs

    def involved_hosts(self) -> Set[str]:
        return {self.vm, self.nfs}

    def flow_sequence(self, rng: random.Random) -> List[TimedFlow]:
        steps = [
            FlowKey(self.vm, self.nfs, self._eph(rng), NFS_PORT),
            FlowKey(self.nfs, self.vm, NFS_PORT, self._eph(rng)),
            FlowKey(self.vm, self.nfs, self._eph(rng), NFS_PORT),
        ]
        times = self._gaps(rng, len(steps))
        return list(zip(times, steps))

    def side_effect(self, network: Network) -> None:
        network.shutdown_host(self.vm)


class MountNFSTask(OperatorTask):
    """Mount network storage: portmap, then mountd, then NFS traffic."""

    name = "mount_nfs"

    def __init__(self, host: str, nfs: str) -> None:
        self.host = host
        self.nfs = nfs

    def involved_hosts(self) -> Set[str]:
        return {self.host, self.nfs}

    def flow_sequence(self, rng: random.Random) -> List[TimedFlow]:
        steps = [
            FlowKey(self.host, self.nfs, self._eph(rng), PORTMAP_PORT, proto="udp"),
            FlowKey(self.host, self.nfs, self._eph(rng), MOUNTD_PORT),
            FlowKey(self.host, self.nfs, self._eph(rng), NFS_PORT),
        ]
        times = self._gaps(rng, len(steps))
        return list(zip(times, steps))


class UnmountNFSTask(OperatorTask):
    """Unmount network storage: mountd notification then final NFS flush."""

    name = "unmount_nfs"

    def __init__(self, host: str, nfs: str) -> None:
        self.host = host
        self.nfs = nfs

    def involved_hosts(self) -> Set[str]:
        return {self.host, self.nfs}

    def flow_sequence(self, rng: random.Random) -> List[TimedFlow]:
        steps = [
            FlowKey(self.host, self.nfs, self._eph(rng), NFS_PORT),
            FlowKey(self.host, self.nfs, self._eph(rng), MOUNTD_PORT),
        ]
        times = self._gaps(rng, len(steps))
        return list(zip(times, steps))


class VLANUpdateTask(OperatorTask):
    """Update VLAN membership for a set of hosts (multi-host task).

    The paper leaves "operator tasks involving connections to multiple
    hosts (e.g., update VLAN or ACL)" to future work (Section V-B2); this
    implements that extension. A management server pushes the new VLAN
    configuration to every affected host's management agent in sequence,
    then commits the change to the configuration store. The flow sequence
    therefore binds one placeholder per touched host, exercising the
    multi-binding unification of the task matcher.
    """

    name = "vlan_update"

    MGMT_PORT = 8443
    CONFIG_STORE_PORT = 5000

    def __init__(self, mgmt: str, hosts: Sequence[str], config_store: str) -> None:
        if not hosts:
            raise ValueError("a VLAN update must touch at least one host")
        self.mgmt = mgmt
        self.hosts = list(hosts)
        self.config_store = config_store

    def involved_hosts(self) -> Set[str]:
        return {self.mgmt, self.config_store, *self.hosts}

    def flow_sequence(self, rng: random.Random) -> List[TimedFlow]:
        steps = [
            # Read the current configuration first.
            FlowKey(self.mgmt, self.config_store, self._eph(rng), self.CONFIG_STORE_PORT),
        ]
        for host in self.hosts:
            steps.append(FlowKey(self.mgmt, host, self._eph(rng), self.MGMT_PORT))
            # The agent acknowledges on the reverse path.
            steps.append(FlowKey(host, self.mgmt, self.MGMT_PORT, self._eph(rng)))
        steps.append(
            FlowKey(self.mgmt, self.config_store, self._eph(rng), self.CONFIG_STORE_PORT)
        )
        times = self._gaps(rng, len(steps), mean=0.03)
        return list(zip(times, steps))


class ACLUpdateTask(OperatorTask):
    """Push new ACL rules to a set of hosts over their admin SSH port.

    Like :class:`VLANUpdateTask`, a multi-host operator task (the paper's
    future work); distinguishable from VLAN updates by its port profile
    and the absence of a configuration-store commit.
    """

    name = "acl_update"

    SSH_PORT = 22

    def __init__(self, mgmt: str, hosts: Sequence[str]) -> None:
        if not hosts:
            raise ValueError("an ACL update must touch at least one host")
        self.mgmt = mgmt
        self.hosts = list(hosts)

    def involved_hosts(self) -> Set[str]:
        return {self.mgmt, *self.hosts}

    def flow_sequence(self, rng: random.Random) -> List[TimedFlow]:
        steps = []
        for host in self.hosts:
            steps.append(FlowKey(self.mgmt, host, self._eph(rng), self.SSH_PORT))
        times = self._gaps(rng, len(steps), mean=0.04)
        return list(zip(times, steps))
